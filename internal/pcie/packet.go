package pcie

// SIF packet framing and the sequence-numbered replay channel. In the
// fault-free configuration every posted transfer bypasses this layer and
// goes straight to the link, so the fast path is byte-identical to a
// build without it. With an injector attached, each posted transfer is
// framed (sequence number + length + CRC), subjected to the injector's
// verdict, and delivered through a reorder buffer that guarantees
// exactly-once in-order delivery — the property the host task's
// data-before-flag FIFO depends on. Lost or damaged frames are recovered
// by retransmission timers with exponential backoff; a frame that fails
// its CRC is counted and discarded exactly like a drop, which is what
// lets the framing validator double as the recovery trigger.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"vscc/internal/fault"
	"vscc/internal/noc"
	"vscc/internal/sim"
)

// HeaderBytes is the wire size of a SIF frame header: 16 bytes of
// fields plus a full CRC-32, so any single error burst up to 32 bits is
// guaranteed rejected.
const HeaderBytes = 20

// Header is the SIF frame header: sequence number, payload length, a
// kind tag, the membership epoch of the target device, and a CRC-32
// over the rest.
type Header struct {
	Seq    uint64
	Length uint32
	Kind   byte
	// Epoch is the device membership epoch the frame was stamped with
	// (see vscc.Membership). A frame whose epoch disagrees with the
	// receiver's current epoch is pre-crash traffic and is rejected.
	// Epoch 0 — no membership manager — encodes exactly as the old
	// reserved byte, so armed runs without device faults stay
	// byte-identical.
	Epoch uint8
}

// EncodeHeader serializes h with its CRC.
func EncodeHeader(h Header) [HeaderBytes]byte {
	var b [HeaderBytes]byte
	binary.LittleEndian.PutUint64(b[0:], h.Seq)
	binary.LittleEndian.PutUint32(b[8:], h.Length)
	b[12] = h.Kind
	b[13] = 0x5A // frame marker
	b[14] = h.Epoch
	// b[15] reserved; the CRC covers it, the marker and the epoch.
	binary.LittleEndian.PutUint32(b[16:], crc32.ChecksumIEEE(b[:16]))
	return b
}

// ErrBadFrame rejects a frame whose marker or CRC does not check out.
var ErrBadFrame = errors.New("pcie: bad SIF frame")

// DecodeHeader validates and parses a SIF frame header.
func DecodeHeader(b []byte) (Header, error) {
	if len(b) < HeaderBytes {
		return Header{}, fmt.Errorf("%w: %d bytes, want %d", ErrBadFrame, len(b), HeaderBytes)
	}
	if b[13] != 0x5A {
		return Header{}, fmt.Errorf("%w: marker %#x", ErrBadFrame, b[13])
	}
	if b[15] != 0 {
		return Header{}, fmt.Errorf("%w: reserved byte %#x", ErrBadFrame, b[15])
	}
	if got, want := binary.LittleEndian.Uint32(b[16:]), crc32.ChecksumIEEE(b[:16]); got != want {
		return Header{}, fmt.Errorf("%w: crc %#08x, want %#08x", ErrBadFrame, got, want)
	}
	return Header{
		Seq:    binary.LittleEndian.Uint64(b[0:]),
		Length: binary.LittleEndian.Uint32(b[8:]),
		Kind:   b[12],
		Epoch:  b[14],
	}, nil
}

// DeviceView is the membership manager's answer to "may I talk to this
// device right now, and in which epoch". A nil view (no device faults
// armed) means every device is permanently usable in epoch 0.
type DeviceView interface {
	// Usable reports whether device dev is Up or Draining — i.e. frames
	// to and from it may still use the wire.
	Usable(dev int) bool
	// Epoch returns device dev's current membership epoch.
	Epoch(dev int) uint8
}

// outPacket is one posted transfer awaiting acknowledgement-by-arrival.
type outPacket struct {
	bytes    int
	deliver  func()
	attempts int
	arrived  bool
	// cancelRetx disarms the current attempt's retransmission timer; a
	// cancelled timer leaves no event on the simulated timeline, keeping
	// zero-fault armed runs cycle-identical to bare-link runs.
	cancelRetx func()
}

// Channel is one direction of one device's SIF connection with
// sequence-numbered idempotent replay layered over the raw link.
type Channel struct {
	k    *sim.Kernel
	link *noc.Link
	inj  *fault.Injector
	site string
	dev  int
	rec  fault.Recovery
	// view gates the wire on device membership; nil means always up.
	view DeviceView

	nextSeq   uint64 // last sequence number issued
	delivered uint64 // highest sequence delivered in order
	// outstanding holds posted-but-not-yet-delivered packets by sequence
	// number; arrivals past a gap park here until the gap closes.
	outstanding map[uint64]*outPacket
}

// newChannel wraps link; k and inj stay nil until SetFaults arms the
// fabric, and a nil-injector channel forwards straight to the link.
func newChannel(link *noc.Link, site string, dev int) *Channel {
	return &Channel{link: link, site: site, dev: dev}
}

// arm attaches the kernel and injector (see Fabric.SetFaults).
func (c *Channel) arm(k *sim.Kernel, inj *fault.Injector) {
	c.k = k
	c.inj = inj
	c.rec = inj.Recovery()
	c.outstanding = make(map[uint64]*outPacket)
}

// Post sends a posted transfer: the calling process is charged the
// serialization delay and deliver runs when the bytes arrive. Without an
// injector this is exactly link.TransferAsync; with one, the transfer is
// framed, faulted, replayed and deduplicated, preserving the link's
// exactly-once in-order semantics through arbitrary drop/dup/delay.
func (c *Channel) Post(p *sim.Proc, bytes int, deliver func()) {
	if c.inj == nil {
		c.link.TransferAsync(p, bytes, deliver)
		return
	}
	c.nextSeq++
	c.outstanding[c.nextSeq] = &outPacket{bytes: bytes, deliver: deliver}
	c.transmit(p, c.nextSeq)
}

// epoch returns the current membership epoch of this channel's device.
func (c *Channel) epoch() uint8 {
	if c.view == nil {
		return 0
	}
	return c.view.Epoch(c.dev)
}

// transmit pushes one attempt of packet seq onto the wire and arms its
// retransmission timer.
func (c *Channel) transmit(p *sim.Proc, seq uint64) {
	op := c.outstanding[seq]
	if op == nil || op.arrived {
		return
	}
	if c.view != nil && !c.view.Usable(c.dev) {
		// The device is down: hold the frame in the journal without
		// burning the wire or a retransmission attempt. The timer keeps
		// ticking at the base period so the frame re-offers itself, and
		// the membership manager's rejoin replay re-drives it at once.
		op.cancelRetx = c.k.AfterCancel(c.rec.RetxTimeout, func() { c.checkRetx(seq) })
		return
	}
	op.attempts++
	frame := EncodeHeader(Header{Seq: seq, Length: uint32(op.bytes), Epoch: c.epoch()})
	v := c.inj.PacketFault(c.site, c.dev)
	switch {
	case v.Drop:
		// The frame occupies the wire and vanishes.
		c.link.TransferAsync(p, op.bytes, nil)
	case v.Corrupt:
		frame[c.inj.Pick(c.site, c.dev, HeaderBytes)] ^= 0x40
		fallthrough
	default:
		arrive := func() { c.receive(frame) }
		if v.Delay > 0 {
			delay := v.Delay
			c.link.TransferAsync(p, op.bytes, func() { c.k.After(delay, arrive) })
		} else {
			c.link.TransferAsync(p, op.bytes, arrive)
		}
		if v.Dup {
			c.link.TransferAsync(p, op.bytes, arrive)
		}
	}
	// Exponential backoff, capped so the shift cannot overflow.
	shift := op.attempts - 1
	if shift > 16 {
		shift = 16
	}
	op.cancelRetx = c.k.AfterCancel(c.rec.RetxTimeout<<shift, func() { c.checkRetx(seq) })
}

// receive handles one frame arrival: validate, deduplicate, and drain
// the reorder buffer in sequence order.
func (c *Channel) receive(frame [HeaderBytes]byte) {
	h, err := DecodeHeader(frame[:])
	if err != nil {
		// Damaged in flight; the CRC rejection downgrades it to a drop
		// and the retransmission timer recovers it.
		c.inj.RecordRecovery("crc-reject", c.site, c.dev)
		return
	}
	if c.view != nil {
		if !c.view.Usable(c.dev) {
			// The endpoint is down; whatever was still in flight is
			// void. The sender's journal replays it after rejoin.
			c.inj.RecordRecovery("dev-reject", c.site, c.dev)
			return
		}
		if h.Epoch != c.view.Epoch(c.dev) {
			// Pre-crash traffic surfacing in a later epoch (a delayed or
			// duplicated frame that outlived its device incarnation).
			// Rejecting it is what makes rejoin safe; retransmission
			// re-stamps the current epoch and recovers the payload.
			c.inj.RecordRecovery("epoch-reject", c.site, c.dev)
			return
		}
	}
	// The signed distance tolerates sequence-number wraparound: a frame
	// just past a delivered counter near ^uint64(0) must still count as
	// new, not as a duplicate from 2^64 packets ago.
	if int64(h.Seq-c.delivered) <= 0 {
		// Duplicate of an already-delivered frame: idempotent discard.
		c.inj.RecordRecovery("dup-discard", c.site, c.dev)
		return
	}
	op := c.outstanding[h.Seq]
	if op == nil || op.arrived {
		// Duplicate of a frame parked in the reorder buffer.
		c.inj.RecordRecovery("dup-discard", c.site, c.dev)
		return
	}
	op.arrived = true
	if op.cancelRetx != nil {
		op.cancelRetx()
	}
	for {
		next, ok := c.outstanding[c.delivered+1]
		if !ok || !next.arrived {
			return
		}
		c.delivered++
		delete(c.outstanding, c.delivered)
		if next.deliver != nil {
			next.deliver()
		}
	}
}

// checkRetx fires when packet seq's retransmission timer expires.
func (c *Channel) checkRetx(seq uint64) {
	op := c.outstanding[seq]
	if op == nil || op.arrived {
		return // delivered (or drained) in time
	}
	if op.attempts > c.rec.MaxRetx {
		// Unrecoverable. Fail through a spawned process so Kernel.Run
		// reports a clean, deterministic error instead of unwinding the
		// scheduler.
		site, dev, attempts := c.site, c.dev, op.attempts
		c.k.Spawn("pcie.retx-fail", func(p *sim.Proc) {
			panic(fmt.Sprintf("pcie: %s dev %d seq %d lost after %d attempts", site, dev, seq, attempts))
		})
		return
	}
	c.inj.RecordRecovery("retx", c.site, c.dev)
	c.k.Spawn("pcie.retx", func(p *sim.Proc) { c.transmit(p, seq) })
}

// Backlog reports the packets posted but not yet delivered in order.
func (c *Channel) Backlog() int { return len(c.outstanding) }

// Replay retransmits every journaled frame that has not arrived yet, in
// sequence order (sorted, so a rejoin replays deterministically). It
// returns the frame and byte totals, for the replay.* trace counters.
// Each replayed frame is re-stamped with the device's current epoch.
func (c *Channel) Replay(p *sim.Proc) (frames, bytes int) {
	if c.outstanding == nil {
		return 0, 0
	}
	seqs := make([]uint64, 0, len(c.outstanding))
	for seq, op := range c.outstanding {
		if !op.arrived {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return int64(seqs[i]-seqs[j]) < 0 })
	for _, seq := range seqs {
		op := c.outstanding[seq]
		if op == nil || op.arrived {
			// Delivered while an earlier replay parked on the wire for
			// serialization: transmit charges p the link occupancy, and
			// in-flight arrivals may drain the reorder buffer meanwhile.
			continue
		}
		if op.cancelRetx != nil {
			op.cancelRetx()
		}
		frames++
		bytes += op.bytes
		c.transmit(p, seq)
	}
	return frames, bytes
}

// SetFaults arms sequence-numbered replay on every link of the fabric.
// Must be called before any posted traffic.
func (f *Fabric) SetFaults(k *sim.Kernel, inj *fault.Injector) {
	for _, pair := range f.chans {
		pair.d2h.arm(k, inj)
		pair.h2d.arm(k, inj)
	}
}

// SetMembership installs a device membership view on every channel:
// frames to a down device are journaled instead of transmitted, and
// cross-epoch arrivals are rejected. Requires SetFaults first (the
// fault-free fast path has no framing to stamp epochs into).
func (f *Fabric) SetMembership(v DeviceView) {
	for _, pair := range f.chans {
		pair.d2h.view = v
		pair.h2d.view = v
	}
}

// ReplayDevice retransmits both directions of device d's journal after
// a rejoin and returns the combined frame/byte totals.
func (f *Fabric) ReplayDevice(p *sim.Proc, d int) (frames, bytes int) {
	fr1, by1 := f.chans[d].h2d.Replay(p)
	fr2, by2 := f.chans[d].d2h.Replay(p)
	return fr1 + fr2, by1 + by2
}

// PostD2H sends a posted device-to-host transfer on device d's link
// through the replay channel.
func (f *Fabric) PostD2H(p *sim.Proc, d, bytes int, deliver func()) {
	f.chans[d].d2h.Post(p, bytes, deliver)
}

// PostH2D sends a posted host-to-device transfer on device d's link.
func (f *Fabric) PostH2D(p *sim.Proc, d, bytes int, deliver func()) {
	f.chans[d].h2d.Post(p, bytes, deliver)
}
