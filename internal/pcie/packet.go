package pcie

// SIF packet framing and the sequence-numbered replay channel. In the
// fault-free configuration every posted transfer bypasses this layer and
// goes straight to the link, so the fast path is byte-identical to a
// build without it. With an injector attached, each posted transfer is
// framed (sequence number + length + CRC), subjected to the injector's
// verdict, and delivered through a reorder buffer that guarantees
// exactly-once in-order delivery — the property the host task's
// data-before-flag FIFO depends on. Lost or damaged frames are recovered
// by retransmission timers with exponential backoff; a frame that fails
// its CRC is counted and discarded exactly like a drop, which is what
// lets the framing validator double as the recovery trigger.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"vscc/internal/fault"
	"vscc/internal/noc"
	"vscc/internal/sim"
)

// HeaderBytes is the wire size of a SIF frame header: 16 bytes of
// fields plus a full CRC-32, so any single error burst up to 32 bits is
// guaranteed rejected.
const HeaderBytes = 20

// Header is the SIF frame header: sequence number, payload length, a
// kind tag, and a CRC-32 over the rest.
type Header struct {
	Seq    uint64
	Length uint32
	Kind   byte
}

// EncodeHeader serializes h with its CRC.
func EncodeHeader(h Header) [HeaderBytes]byte {
	var b [HeaderBytes]byte
	binary.LittleEndian.PutUint64(b[0:], h.Seq)
	binary.LittleEndian.PutUint32(b[8:], h.Length)
	b[12] = h.Kind
	b[13] = 0x5A // frame marker; b[14:16] reserved
	binary.LittleEndian.PutUint32(b[16:], crc32.ChecksumIEEE(b[:16]))
	return b
}

// ErrBadFrame rejects a frame whose marker or CRC does not check out.
var ErrBadFrame = errors.New("pcie: bad SIF frame")

// DecodeHeader validates and parses a SIF frame header.
func DecodeHeader(b []byte) (Header, error) {
	if len(b) < HeaderBytes {
		return Header{}, fmt.Errorf("%w: %d bytes, want %d", ErrBadFrame, len(b), HeaderBytes)
	}
	if b[13] != 0x5A {
		return Header{}, fmt.Errorf("%w: marker %#x", ErrBadFrame, b[13])
	}
	if b[14] != 0 || b[15] != 0 {
		return Header{}, fmt.Errorf("%w: reserved bytes %#x %#x", ErrBadFrame, b[14], b[15])
	}
	if got, want := binary.LittleEndian.Uint32(b[16:]), crc32.ChecksumIEEE(b[:16]); got != want {
		return Header{}, fmt.Errorf("%w: crc %#08x, want %#08x", ErrBadFrame, got, want)
	}
	return Header{
		Seq:    binary.LittleEndian.Uint64(b[0:]),
		Length: binary.LittleEndian.Uint32(b[8:]),
		Kind:   b[12],
	}, nil
}

// outPacket is one posted transfer awaiting acknowledgement-by-arrival.
type outPacket struct {
	bytes    int
	deliver  func()
	attempts int
	arrived  bool
	// cancelRetx disarms the current attempt's retransmission timer; a
	// cancelled timer leaves no event on the simulated timeline, keeping
	// zero-fault armed runs cycle-identical to bare-link runs.
	cancelRetx func()
}

// Channel is one direction of one device's SIF connection with
// sequence-numbered idempotent replay layered over the raw link.
type Channel struct {
	k    *sim.Kernel
	link *noc.Link
	inj  *fault.Injector
	site string
	dev  int
	rec  fault.Recovery

	nextSeq   uint64 // last sequence number issued
	delivered uint64 // highest sequence delivered in order
	// outstanding holds posted-but-not-yet-delivered packets by sequence
	// number; arrivals past a gap park here until the gap closes.
	outstanding map[uint64]*outPacket
}

// newChannel wraps link; k and inj stay nil until SetFaults arms the
// fabric, and a nil-injector channel forwards straight to the link.
func newChannel(link *noc.Link, site string, dev int) *Channel {
	return &Channel{link: link, site: site, dev: dev}
}

// arm attaches the kernel and injector (see Fabric.SetFaults).
func (c *Channel) arm(k *sim.Kernel, inj *fault.Injector) {
	c.k = k
	c.inj = inj
	c.rec = inj.Recovery()
	c.outstanding = make(map[uint64]*outPacket)
}

// Post sends a posted transfer: the calling process is charged the
// serialization delay and deliver runs when the bytes arrive. Without an
// injector this is exactly link.TransferAsync; with one, the transfer is
// framed, faulted, replayed and deduplicated, preserving the link's
// exactly-once in-order semantics through arbitrary drop/dup/delay.
func (c *Channel) Post(p *sim.Proc, bytes int, deliver func()) {
	if c.inj == nil {
		c.link.TransferAsync(p, bytes, deliver)
		return
	}
	c.nextSeq++
	c.outstanding[c.nextSeq] = &outPacket{bytes: bytes, deliver: deliver}
	c.transmit(p, c.nextSeq)
}

// transmit pushes one attempt of packet seq onto the wire and arms its
// retransmission timer.
func (c *Channel) transmit(p *sim.Proc, seq uint64) {
	op := c.outstanding[seq]
	if op == nil || op.arrived {
		return
	}
	op.attempts++
	frame := EncodeHeader(Header{Seq: seq, Length: uint32(op.bytes)})
	v := c.inj.PacketFault(c.site, c.dev)
	switch {
	case v.Drop:
		// The frame occupies the wire and vanishes.
		c.link.TransferAsync(p, op.bytes, nil)
	case v.Corrupt:
		frame[c.inj.Pick(c.site, c.dev, HeaderBytes)] ^= 0x40
		fallthrough
	default:
		arrive := func() { c.receive(frame) }
		if v.Delay > 0 {
			delay := v.Delay
			c.link.TransferAsync(p, op.bytes, func() { c.k.After(delay, arrive) })
		} else {
			c.link.TransferAsync(p, op.bytes, arrive)
		}
		if v.Dup {
			c.link.TransferAsync(p, op.bytes, arrive)
		}
	}
	// Exponential backoff, capped so the shift cannot overflow.
	shift := op.attempts - 1
	if shift > 16 {
		shift = 16
	}
	op.cancelRetx = c.k.AfterCancel(c.rec.RetxTimeout<<shift, func() { c.checkRetx(seq) })
}

// receive handles one frame arrival: validate, deduplicate, and drain
// the reorder buffer in sequence order.
func (c *Channel) receive(frame [HeaderBytes]byte) {
	h, err := DecodeHeader(frame[:])
	if err != nil {
		// Damaged in flight; the CRC rejection downgrades it to a drop
		// and the retransmission timer recovers it.
		c.inj.RecordRecovery("crc-reject", c.site, c.dev)
		return
	}
	if h.Seq <= c.delivered {
		// Duplicate of an already-delivered frame: idempotent discard.
		c.inj.RecordRecovery("dup-discard", c.site, c.dev)
		return
	}
	op := c.outstanding[h.Seq]
	if op == nil || op.arrived {
		// Duplicate of a frame parked in the reorder buffer.
		c.inj.RecordRecovery("dup-discard", c.site, c.dev)
		return
	}
	op.arrived = true
	if op.cancelRetx != nil {
		op.cancelRetx()
	}
	for {
		next, ok := c.outstanding[c.delivered+1]
		if !ok || !next.arrived {
			return
		}
		c.delivered++
		delete(c.outstanding, c.delivered)
		if next.deliver != nil {
			next.deliver()
		}
	}
}

// checkRetx fires when packet seq's retransmission timer expires.
func (c *Channel) checkRetx(seq uint64) {
	op := c.outstanding[seq]
	if op == nil || op.arrived {
		return // delivered (or drained) in time
	}
	if op.attempts > c.rec.MaxRetx {
		// Unrecoverable. Fail through a spawned process so Kernel.Run
		// reports a clean, deterministic error instead of unwinding the
		// scheduler.
		site, dev, attempts := c.site, c.dev, op.attempts
		c.k.Spawn("pcie.retx-fail", func(p *sim.Proc) {
			panic(fmt.Sprintf("pcie: %s dev %d seq %d lost after %d attempts", site, dev, seq, attempts))
		})
		return
	}
	c.inj.RecordRecovery("retx", c.site, c.dev)
	c.k.Spawn("pcie.retx", func(p *sim.Proc) { c.transmit(p, seq) })
}

// Backlog reports the packets posted but not yet delivered in order.
func (c *Channel) Backlog() int { return len(c.outstanding) }

// SetFaults arms sequence-numbered replay on every link of the fabric.
// Must be called before any posted traffic.
func (f *Fabric) SetFaults(k *sim.Kernel, inj *fault.Injector) {
	for _, pair := range f.chans {
		pair.d2h.arm(k, inj)
		pair.h2d.arm(k, inj)
	}
}

// PostD2H sends a posted device-to-host transfer on device d's link
// through the replay channel.
func (f *Fabric) PostD2H(p *sim.Proc, d, bytes int, deliver func()) {
	f.chans[d].d2h.Post(p, bytes, deliver)
}

// PostH2D sends a posted host-to-device transfer on device d's link.
func (f *Fabric) PostH2D(p *sim.Proc, d, bytes int, deliver func()) {
	f.chans[d].h2d.Post(p, bytes, deliver)
}
