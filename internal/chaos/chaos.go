// Package chaos is a deterministic fault-campaign engine: it enumerates
// fault schedules by a seeded walk over site x device x cycle-window —
// the sites come straight out of the fault.ParseSpec grammar — runs each
// point through an existing recovery harness (the devretry scheduler or
// the re-executing task runtime), checks the target's invariants plus
// rerun byte-identity, and shrinks any failing schedule to a minimal
// reproducer spec it reports verbatim.
//
// Everything is a pure function of (seed, index): a campaign replays
// byte-identically from its seed alone, and a single failing point can
// be re-examined without re-running the walk that found it.
package chaos

import (
	"fmt"
	"strings"

	"vscc/internal/sim"
)

// Sites are the fault-space dimensions the generator walks. Each is a
// repeatable key of the fault.ParseSpec grammar; the rendered tokens of
// a schedule are appended to the target's base spec.
var Sites = []string{"devcrash", "devlinkdown", "stall"}

// Generation quanta: cycle windows are walked on coarse grids so that
// distinct points exercise genuinely distinct interleavings instead of
// off-by-a-cycle neighbours, and so a printed reproducer stays legible.
const (
	atQuantum  = sim.Cycles(20_000)  // injection cycle grid
	atSlots    = 25                  // At in [20k, 500k]
	devQuantum = sim.Cycles(50_000)  // device outage grid
	devSlots   = 7                   // Down in [100k, 400k]
	devBase    = sim.Cycles(100_000) // shortest outage
	stallQuant = sim.Cycles(10_000)  // host stall grid
	stallSlots = 8                   // For in [10k, 80k]
)

// Fault is one point of the fault space: a ParseSpec site, the device
// it lands on (ignored by host-wide sites such as stall), the injection
// cycle and the duration (outage for device sites, freeze for stall).
type Fault struct {
	Site string
	Dev  int
	At   sim.Cycles
	Dur  sim.Cycles
}

// Token renders the fault as the ParseSpec token that injects it.
func (f Fault) Token() string {
	if f.Site == "stall" {
		return fmt.Sprintf("stall=%d:%d", f.At, f.Dur)
	}
	return fmt.Sprintf("%s=%d:%d:%d", f.Site, f.At, f.Dev, f.Dur)
}

// Spec joins a target's base spec with the schedule's fault tokens into
// one ParseSpec input. The result is the reproducer currency of the
// whole package: it is what a violation report prints and what a
// re-check parses.
func Spec(base string, faults []Fault) string {
	toks := make([]string, 0, len(faults)+1)
	if base != "" {
		toks = append(toks, base)
	}
	for _, f := range faults {
		toks = append(toks, f.Token())
	}
	return strings.Join(toks, ",")
}

// Schedule is one campaign point: the faults injected on top of a
// target's base spec.
type Schedule struct {
	Index  int
	Faults []Fault
}

// rng is splitmix64 — tiny, seedable, and stable across Go releases,
// unlike math/rand, whose stream the standard library does not pin.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// PointSchedule derives campaign point index from (seed, index) alone,
// so any single point replays without walking its predecessors.
func PointSchedule(seed uint64, index, devices, maxFaults int) Schedule {
	if maxFaults < 1 {
		maxFaults = 1
	}
	if devices < 1 {
		devices = 1
	}
	r := &rng{state: seed ^ (uint64(index+1) * 0xd1342543de82ef95)}
	n := 1 + r.intn(maxFaults)
	faults := make([]Fault, n)
	for i := range faults {
		f := Fault{Site: Sites[r.intn(len(Sites))], Dev: r.intn(devices)}
		f.At = atQuantum * sim.Cycles(1+r.intn(atSlots))
		if f.Site == "stall" {
			f.Dev = 0
			f.Dur = stallQuant * sim.Cycles(1+r.intn(stallSlots))
		} else {
			f.Dur = devBase + devQuantum*sim.Cycles(r.intn(devSlots))
		}
		faults[i] = f
	}
	return Schedule{Index: index, Faults: faults}
}

// Generate enumerates the first n points of the seeded walk.
func Generate(seed uint64, n, devices, maxFaults int) []Schedule {
	out := make([]Schedule, n)
	for i := range out {
		out[i] = PointSchedule(seed, i, devices, maxFaults)
	}
	return out
}

// Target is one harness the campaign drives. Run executes the full
// spec (base + fault tokens) once and returns a digest of everything
// observable about the run plus any invariant violations. Run must be
// a pure function of the spec: the campaign calls it twice per point
// and flags digest divergence as a violation in its own right.
type Target struct {
	Name string
	Base string
	Run  func(spec string) (digest string, problems []string)
}

// Violation reports one failing campaign point, already shrunk.
type Violation struct {
	Target string
	Seed   uint64
	Index  int
	// Spec is the full failing spec as generated.
	Spec string
	// Problems are the invariant violations of the unshrunk point.
	Problems []string
	// Minimized is the shrunk fault set and MinSpec its rendered spec:
	// a complete ParseSpec input that still violates the invariants,
	// from which no single fault can be removed.
	Minimized []Fault
	MinSpec   string
}

// Error renders the violation as the reproducer report the CLI prints.
func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: target %s point %d (seed %d) violates invariants:\n", v.Target, v.Index, v.Seed)
	for _, p := range v.Problems {
		fmt.Fprintf(&b, "  - %s\n", p)
	}
	fmt.Fprintf(&b, "full spec: %s\nminimized reproducer (%d faults):\n%s\n",
		v.Spec, len(v.Minimized), v.MinSpec)
	return b.String()
}

// Campaign is a seeded walk of N points, round-robined across Targets.
type Campaign struct {
	Seed      uint64
	N         int
	Devices   int
	MaxFaults int
	Targets   []Target
	// Log, when set, receives one progress line per point.
	Log func(format string, args ...any)
}

// check runs one fault set through the target twice: invariant
// violations from either run are returned as-is, and a digest mismatch
// between the runs becomes a violation of the determinism invariant.
func check(t Target, faults []Fault) (spec string, problems []string) {
	spec = Spec(t.Base, faults)
	d1, p1 := t.Run(spec)
	if len(p1) > 0 {
		return spec, p1
	}
	d2, p2 := t.Run(spec)
	if len(p2) > 0 {
		return spec, p2
	}
	if d1 != d2 {
		return spec, []string{"rerun digest diverged from the first run (nondeterministic recovery)"}
	}
	return spec, nil
}

// Run walks the campaign. It stops at the first failing point and
// returns its shrunk Violation; a fully clean walk returns (points, nil)
// with points == N.
func (c *Campaign) Run() (points int, v *Violation) {
	if c.MaxFaults == 0 {
		c.MaxFaults = 4
	}
	if c.Devices == 0 {
		c.Devices = 2
	}
	for i := 0; i < c.N; i++ {
		t := c.Targets[i%len(c.Targets)]
		sch := PointSchedule(c.Seed, i, c.Devices, c.MaxFaults)
		spec, problems := check(t, sch.Faults)
		if c.Log != nil {
			status := "ok"
			if len(problems) > 0 {
				status = "FAIL"
			}
			c.Log("point %d target=%s faults=%d %s spec=%s", i, t.Name, len(sch.Faults), status, spec)
		}
		if len(problems) > 0 {
			min := Shrink(sch.Faults, func(f []Fault) bool {
				_, p := check(t, f)
				return len(p) > 0
			})
			return i, &Violation{
				Target:    t.Name,
				Seed:      c.Seed,
				Index:     i,
				Spec:      spec,
				Problems:  problems,
				Minimized: min,
				MinSpec:   Spec(t.Base, min),
			}
		}
	}
	return c.N, nil
}

// Shrink reduces a failing fault set to a 1-minimal one: removing any
// single remaining fault makes the failure disappear. It is ddmin at
// granularity one, run to a fixpoint; with the small fault counts the
// generator emits, finer-grained chunking buys nothing. The predicate
// must be deterministic — it is the same check the campaign ran.
func Shrink(faults []Fault, failing func([]Fault) bool) []Fault {
	cur := append([]Fault(nil), faults...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			cand := make([]Fault, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if failing(cand) {
				cur, changed = cand, true
				i-- // the slot now holds an untried fault
			}
		}
	}
	return cur
}
