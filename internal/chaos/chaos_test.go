package chaos

import (
	"strings"
	"testing"

	"vscc/internal/fault"
)

// TestFaultTokensParse: every token the generator can emit must be a
// valid ParseSpec input, and a rendered schedule must round-trip into
// the matching fault lists.
func TestFaultTokensParse(t *testing.T) {
	faults := []Fault{
		{Site: "devcrash", Dev: 1, At: 40_000, Dur: 250_000},
		{Site: "devlinkdown", Dev: 0, At: 120_000, Dur: 350_000},
		{Site: "stall", At: 460_000, Dur: 20_000},
		{Site: "devcrash", Dev: 0, At: 300_000, Dur: 150_000},
	}
	spec := Spec("seed=3,ckpt=50000", faults)
	want := "seed=3,ckpt=50000,devcrash=40000:1:250000,devlinkdown=120000:0:350000,stall=460000:20000,devcrash=300000:0:150000"
	if spec != want {
		t.Fatalf("Spec rendered %q, want %q", spec, want)
	}
	cfg, err := fault.ParseSpec(spec)
	if err != nil {
		t.Fatalf("generated spec does not parse: %v", err)
	}
	if len(cfg.DevCrashAt) != 2 || len(cfg.DevLinkDownAt) != 1 || len(cfg.StallAt) != 1 {
		t.Errorf("round-trip lost faults: crash=%d linkdown=%d stall=%d",
			len(cfg.DevCrashAt), len(cfg.DevLinkDownAt), len(cfg.StallAt))
	}
}

// TestGenerateDeterministic: the walk is a pure function of the seed,
// every point is derivable in isolation, and every generated token
// parses.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, 64, 2, 4)
	b := Generate(42, 64, 2, 4)
	for i := range a {
		if Spec("", a[i].Faults) != Spec("", b[i].Faults) {
			t.Fatalf("point %d differs across identical walks", i)
		}
		if got := PointSchedule(42, i, 2, 4); Spec("", got.Faults) != Spec("", a[i].Faults) {
			t.Fatalf("PointSchedule(%d) differs from the walk", i)
		}
		if len(a[i].Faults) < 1 || len(a[i].Faults) > 4 {
			t.Fatalf("point %d has %d faults, want 1..4", i, len(a[i].Faults))
		}
		if _, err := fault.ParseSpec(Spec("seed=1", a[i].Faults)); err != nil {
			t.Fatalf("point %d does not parse: %v", i, err)
		}
	}
	if Spec("", Generate(43, 1, 2, 4)[0].Faults) == Spec("", a[0].Faults) {
		t.Error("different seeds produced identical first points")
	}
}

// TestCampaignShortClean is the blocking-CI campaign: a short seeded
// walk over both real targets must be violation-free.
func TestCampaignShortClean(t *testing.T) {
	c := &Campaign{Seed: 1, N: 16, Targets: DefaultTargets()}
	n, v := c.Run()
	if v != nil {
		t.Fatalf("violation at point %d:\n%s", n, v.Error())
	}
	if n != 16 {
		t.Errorf("campaign walked %d points, want 16", n)
	}
}

// TestCampaignNightlyDepth is the nightly depth at test granularity;
// the walk overlaps the CLI campaign's prefix. Skipped under -short.
func TestCampaignNightlyDepth(t *testing.T) {
	if testing.Short() {
		t.Skip("deep campaign: run without -short or via cmd/chaos")
	}
	c := &Campaign{Seed: 1, N: 200, Targets: DefaultTargets()}
	if n, v := c.Run(); v != nil {
		t.Fatalf("violation at point %d:\n%s", n, v.Error())
	}
}

// plantedTarget fails whenever the spec carries both a devcrash and a
// devlinkdown token — a synthetic 2-fault invariant violation whose
// minimal reproducer is exactly one fault of each site.
func plantedTarget() Target {
	return Target{
		Name: "planted",
		Base: "seed=9",
		Run: func(spec string) (string, []string) {
			if strings.Contains(spec, "devcrash=") && strings.Contains(spec, "devlinkdown=") {
				return "", []string{"planted: crash and linkdown present together"}
			}
			return "clean", nil
		},
	}
}

// TestPlantedViolationShrinks: a many-fault failing schedule must
// shrink to a <=2-fault reproducer that still fails and is 1-minimal.
func TestPlantedViolationShrinks(t *testing.T) {
	planted := plantedTarget()
	faults := []Fault{
		{Site: "stall", At: 20_000, Dur: 10_000},
		{Site: "devcrash", Dev: 0, At: 40_000, Dur: 100_000},
		{Site: "stall", At: 60_000, Dur: 10_000},
		{Site: "devcrash", Dev: 1, At: 80_000, Dur: 100_000},
		{Site: "devlinkdown", Dev: 0, At: 100_000, Dur: 100_000},
		{Site: "devlinkdown", Dev: 1, At: 120_000, Dur: 100_000},
		{Site: "stall", At: 140_000, Dur: 10_000},
	}
	failing := func(f []Fault) bool {
		_, p := check(planted, f)
		return len(p) > 0
	}
	if !failing(faults) {
		t.Fatal("planted schedule does not fail before shrinking")
	}
	min := Shrink(faults, failing)
	if len(min) > 2 {
		t.Fatalf("shrunk to %d faults (%s), want <=2", len(min), Spec("", min))
	}
	if !failing(min) {
		t.Fatal("minimized schedule no longer fails")
	}
	for i := range min {
		reduced := append(append([]Fault(nil), min[:i]...), min[i+1:]...)
		if failing(reduced) {
			t.Errorf("minimized schedule is not 1-minimal: fault %d is removable", i)
		}
	}
}

// TestCampaignReportsShrunkViolation drives the full campaign path over
// the planted target: the walk must stop at the first failing point and
// hand back a violation whose minimized spec is a verbatim reproducer.
func TestCampaignReportsShrunkViolation(t *testing.T) {
	planted := plantedTarget()
	c := &Campaign{Seed: 7, N: 400, Targets: []Target{planted}, Log: func(string, ...any) {}}
	n, v := c.Run()
	if v == nil {
		t.Fatal("no generated point carried both a devcrash and a devlinkdown; campaign found nothing")
	}
	if v.Index != n || v.Target != "planted" || v.Seed != 7 {
		t.Errorf("violation metadata = {target=%s seed=%d index=%d}, walk stopped at %d",
			v.Target, v.Seed, v.Index, n)
	}
	if len(v.Minimized) > 2 {
		t.Errorf("campaign minimized to %d faults, want <=2: %s", len(v.Minimized), v.MinSpec)
	}
	if v.MinSpec != Spec(planted.Base, v.Minimized) {
		t.Errorf("MinSpec %q does not render Minimized verbatim", v.MinSpec)
	}
	if _, p := check(planted, v.Minimized); len(p) == 0 {
		t.Error("minimized reproducer does not reproduce")
	}
	report := v.Error()
	for _, want := range []string{"minimized reproducer", v.MinSpec, "planted: crash and linkdown"} {
		if !strings.Contains(report, want) {
			t.Errorf("violation report missing %q:\n%s", want, report)
		}
	}
}

// TestCampaignFlagsNondeterminism: a target whose digest changes across
// the paired reruns must be reported as a determinism violation.
func TestCampaignFlagsNondeterminism(t *testing.T) {
	calls := 0
	flappy := Target{Name: "flappy", Base: "seed=1", Run: func(string) (string, []string) {
		calls++
		if calls%2 == 0 {
			return "digest-b", nil
		}
		return "digest-a", nil
	}}
	_, v := (&Campaign{Seed: 1, N: 1, Targets: []Target{flappy}}).Run()
	if v == nil {
		t.Fatal("digest divergence not flagged")
	}
	if !strings.Contains(strings.Join(v.Problems, " "), "rerun digest diverged") {
		t.Errorf("unexpected problems: %v", v.Problems)
	}
}

// TestTargetBasesAreClean: both real targets must pass on their base
// specs alone — the campaign's invariants hold with zero faults.
func TestTargetBasesAreClean(t *testing.T) {
	for _, tgt := range DefaultTargets() {
		if _, problems := tgt.Run(tgt.Base); len(problems) > 0 {
			t.Errorf("target %s fails its own base spec: %v", tgt.Name, problems)
		}
	}
}
