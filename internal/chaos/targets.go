package chaos

import (
	"fmt"
	"strings"
	"sync"

	"vscc/internal/fault"
	"vscc/internal/rcce"
	"vscc/internal/sched"
	"vscc/internal/sim"
	"vscc/internal/taskrt"
	"vscc/internal/trace"
	"vscc/internal/vscc"
)

// The two recovery harnesses the campaign drives. Both run on a
// 2-device VDMA system, the smallest fabric where device loss strands
// cross-device state; their base specs pin the seed, the checkpoint
// cadence and a fail-fast wait ladder (tight budget, deep retries) so
// losses are detected well inside any generated outage window.

// SchedBase is the scheduler target's base spec. DeviceRetry stays off:
// job recovery is the scheduler's requeue path, not transparent stalls.
const SchedBase = "seed=11,ckpt=50000,budget=100000,waitretries=8"

// TaskrtBase is the task-runtime target's base spec; re-execution needs
// the same fail-fast waits so survivors abandon in-flight operations
// instead of parking until the rejoin.
const TaskrtBase = "seed=11,ckpt=30000,budget=100000,waitretries=8"

// SchedTarget drives the devretry admission path: a 60-rank traffic
// ring spanning both devices, owned by a tenant with a retry budget
// generously above the campaign's fault count. Invariants: every job
// reaches a terminal state; a job that finishes ok neither leaks cores
// nor leaves the free pools short; no job ends failed or rejected; and
// once every job recovered, both devices are back to fully free.
func SchedTarget() Target {
	return Target{Name: "sched", Base: SchedBase, Run: runSched}
}

func runSched(spec string) (string, []string) {
	fcfg, err := fault.ParseSpec(spec)
	if err != nil {
		return "", []string{fmt.Sprintf("parse: %v", err)}
	}
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, vscc.Config{Devices: 2, Scheme: vscc.SchemeVDMA, Faults: fcfg})
	if err != nil {
		return "", []string{fmt.Sprintf("system: %v", err)}
	}
	sink := trace.NewSink(k)
	sys.Instrument(sink)
	s := sched.New(sys, sink, sched.Options{})
	if err := s.AddTenant(sched.TenantSpec{ID: 1, DevRetry: 8}); err != nil {
		return "", []string{fmt.Sprintf("tenant: %v", err)}
	}
	if err := s.Submit([]sched.JobSpec{{Tenant: 1, Name: "span", Kind: sched.KindTraffic,
		Ranks: 60, Scheme: vscc.SchemeVDMA, Size: 4096, Reps: 3}}); err != nil {
		return "", []string{fmt.Sprintf("submit: %v", err)}
	}
	kerr := k.Run()

	var problems []string
	if !s.AllTerminal() {
		problems = append(problems, fmt.Sprintf("jobs left non-terminal (kernel: %v)", kerr))
	} else if kerr != nil && !strings.Contains(kerr.Error(), "deadlock") {
		// Stranded ranks of a reaped job legitimately deadlock the
		// kernel; anything else is a harness failure.
		problems = append(problems, fmt.Sprintf("kernel: %v", kerr))
	}
	var b strings.Builder
	recovered := s.AllTerminal()
	for _, r := range s.Results() {
		fmt.Fprintf(&b, "job %s status=%s retries=%d leaked=%v admit=%d done=%d devs=%v\n",
			r.Spec.Name, r.Status, r.Retries, r.Leaked, r.Admit, r.Done, r.Devices())
		switch r.Status {
		case sched.StatusOK:
			if r.Leaked {
				problems = append(problems, fmt.Sprintf("job %s finished ok but leaked cores", r.Spec.Name))
			}
		case sched.StatusDeviceLost:
			recovered = false // exhausted budget: the leak is the contract
		default:
			recovered = false
			problems = append(problems, fmt.Sprintf("job %s finished %s: %v", r.Spec.Name, r.Status, r.Err))
		}
	}
	if recovered {
		for d, free := range s.Capacity().FreeCores {
			if free != 48 {
				problems = append(problems, fmt.Sprintf("device %d: %d free cores after recovery, want 48", d, free))
			}
		}
	}
	b.WriteString(sink.MetricsReport())
	return b.String(), problems
}

// TaskrtTarget drives task re-execution: the stencil workload with
// Reexec armed under fail-fast waits. Invariants: the run completes,
// and its state hash matches the fault-free serial reference — the
// clean-vs-faulted convergence check — regardless of what the schedule
// crashed, severed or stalled.
func TaskrtTarget() Target {
	return Target{Name: "taskrt", Base: TaskrtBase, Run: runTaskrt}
}

// taskrtRefHash is the fault-free reference hash of the stencil
// decomposition, computed once: it depends only on the build shape.
var taskrtRefHash = sync.OnceValue(func() string {
	ref := taskrt.New(taskrt.Config{})
	if err := taskrt.Build(ref, "stencil", 4, 6, 4); err != nil {
		return "build: " + err.Error()
	}
	if err := ref.RunSerial(4); err != nil {
		return "serial: " + err.Error()
	}
	return ref.StateHash()
})

func runTaskrt(spec string) (string, []string) {
	fcfg, err := fault.ParseSpec(spec)
	if err != nil {
		return "", []string{fmt.Sprintf("parse: %v", err)}
	}
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, vscc.Config{Devices: 2, Scheme: vscc.SchemeVDMA, Faults: fcfg})
	if err != nil {
		return "", []string{fmt.Sprintf("system: %v", err)}
	}
	sink := trace.NewSink(k)
	sys.Instrument(sink)
	session, err := sys.NewSessionAt([]rcce.Place{
		{Dev: 0, Core: 0}, {Dev: 1, Core: 0}, {Dev: 0, Core: 1}, {Dev: 1, Core: 1},
	}, rcce.WithSink(sink))
	if err != nil {
		return "", []string{fmt.Sprintf("session: %v", err)}
	}
	cfg := taskrt.Config{Scheme: vscc.SchemeVDMA, Reexec: true}
	if sys.Membership != nil {
		cfg.Membership = sys.Membership
	}
	rt := taskrt.New(cfg)
	if err := taskrt.Build(rt, "stencil", 4, 6, 4); err != nil {
		return "", []string{fmt.Sprintf("build: %v", err)}
	}
	var problems []string
	if err := rt.Run(session); err != nil {
		problems = append(problems, fmt.Sprintf("run: %v", err))
	}
	if got, want := rt.StateHash(), taskrtRefHash(); got != want {
		problems = append(problems, "state hash diverged from the fault-free serial reference")
	}
	st := rt.Stats()
	digest := fmt.Sprintf("hash=%s done=%d reexecs=%d latedrops=%d rehomes=%d abandons=%d\n%s",
		rt.StateHash(), rt.CompletedAt(), st.Reexecs, st.LateDrops, st.Rehomes, st.Abandons,
		sink.MetricsReport())
	return digest, problems
}

// DefaultTargets is the round-robin set a campaign runs when the caller
// does not pick one.
func DefaultTargets() []Target {
	return []Target{SchedTarget(), TaskrtTarget()}
}
