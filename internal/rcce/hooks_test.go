package rcce

import (
	"testing"
)

func TestMPBOfMatchesPlacement(t *testing.T) {
	s := newSession(t, 4)
	err := s.Run(func(r *Rank) {
		for peer := 0; peer < 4; peer++ {
			dev, tile, base := r.MPBOf(peer)
			pl := s.PlaceOf(peer)
			if dev != pl.Dev || tile != pl.Core/2 {
				t.Errorf("MPBOf(%d) = (%d,%d,%d), placement %+v", peer, dev, tile, base, pl)
			}
			wantBase := 0
			if pl.Core%2 == 1 {
				wantBase = 8192
			}
			if base != wantBase {
				t.Errorf("MPBOf(%d) base = %d, want %d", peer, base, wantBase)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSignalAwaitHandshake(t *testing.T) {
	s := newSession(t, 2)
	var order []string
	err := s.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Ctx().Delay(1000)
			order = append(order, "signal")
			r.SignalSent(1)
			r.AwaitReady(1)
			order = append(order, "acked")
		} else {
			r.AwaitSent(0)
			order = append(order, "seen")
			r.SignalReady(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "signal" || order[1] != "seen" || order[2] != "acked" {
		t.Errorf("handshake order = %v", order)
	}
}

func TestPeekAndClearFlags(t *testing.T) {
	s := newSession(t, 2)
	err := s.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			if r.PeekSent(1) {
				t.Error("sent flag raised before any signal")
			}
			r.Ctx().Delay(10_000) // let rank 1's signal land
			if !r.PeekSent(1) {
				t.Error("sent flag not visible after peer signal")
			}
			r.ClearSent(1)
			if r.PeekSent(1) {
				t.Error("sent flag survives clear")
			}
			if r.PeekReady(1) {
				t.Error("ready flag raised spuriously")
			}
			r.SignalReady(1) // release peer
		case 1:
			r.SignalSent(0)
			r.AwaitReady(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlagByteAtDistinctSpaces(t *testing.T) {
	seen := map[int]bool{}
	for _, kind := range []int{FlagSent, FlagReady, FlagGrant, FlagDMAC} {
		for _, peer := range []int{0, 1, 255} {
			off := FlagByteAt(kind, peer)
			if off < PayloadBytes || off >= PayloadBytes+5*MaxRanks {
				t.Errorf("FlagByteAt(%d,%d) = %d outside the flag arrays", kind, peer, off)
			}
			if seen[off] {
				t.Errorf("flag byte collision at offset %d", off)
			}
			seen[off] = true
		}
	}
	if ScratchByteAt(0) <= FlagByteAt(FlagDMAC, MaxRanks-1) {
		t.Error("scratch line overlaps the flag arrays")
	}
	if ScratchByteAt(31) >= 8192 {
		t.Error("scratch line exceeds the MPB half")
	}
}

func TestFlagByteAtExactOffsets(t *testing.T) {
	// Pin the wire layout: sent, ready, grant and vDMA-completion arrays
	// sit above the payload area in that order (the barrier array lives
	// between ready and grant).
	cases := []struct {
		kind string
		got  int
		want int
	}{
		{"FlagSent", FlagByteAt(FlagSent, 7), PayloadBytes + 7},
		{"FlagReady", FlagByteAt(FlagReady, 7), PayloadBytes + MaxRanks + 7},
		{"FlagGrant", FlagByteAt(FlagGrant, 7), PayloadBytes + 3*MaxRanks + 7},
		{"FlagDMAC", FlagByteAt(FlagDMAC, 7), PayloadBytes + 4*MaxRanks + 7},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("FlagByteAt(%s, 7) = %d, want %d", c.kind, c.got, c.want)
		}
	}
}

func TestFlagByteAtPanicsOnBadKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad kind did not panic")
		}
	}()
	//lint:ignore flagdiscipline deliberately invalid kind to exercise the panic
	FlagByteAt(9, 0)
}

func TestScratchByteAtBounds(t *testing.T) {
	// The full valid range maps to the contiguous 32-byte line above the
	// flag arrays.
	for i := 0; i < 32; i++ {
		if want := PayloadBytes + 5*MaxRanks + i; ScratchByteAt(i) != want {
			t.Errorf("ScratchByteAt(%d) = %d, want %d", i, ScratchByteAt(i), want)
		}
	}
	for _, i := range []int{-1, 32, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ScratchByteAt(%d) did not panic", i)
				}
			}()
			ScratchByteAt(i)
		}()
	}
}

func TestPeekFlagByteZeroBeforeAnyStore(t *testing.T) {
	s := newSession(t, 2)
	err := s.Run(func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		for _, kind := range []int{FlagSent, FlagReady, FlagGrant, FlagDMAC} {
			if v := r.PeekFlagByte(kind, 1); v != 0 {
				t.Errorf("PeekFlagByte(%d, 1) = %#x before any store", kind, v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPeekFlagByteReadsCounters(t *testing.T) {
	s := newSession(t, 2)
	err := s.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Ctx().Delay(10_000)
			if v := r.PeekFlagByte(FlagGrant, 1); v != 0x5A {
				t.Errorf("grant byte = %#x, want 0x5A", v)
			}
		case 1:
			// Write a counter value into rank 0's grant slot for us.
			dev, tile, base := r.MPBOf(0)
			r.Ctx().WriteMPB(dev, tile, base+FlagByteAt(FlagGrant, 1), []byte{0x5A})
			r.Ctx().FlushWCB()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvFloats(t *testing.T) {
	s := newSession(t, 2)
	want := []float64{3.14159, -2.71828, 0, 1e300}
	got := make([]float64, len(want))
	err := s.Run(func(r *Rank) {
		if r.ID() == 0 {
			if err := r.SendFloats(1, want); err != nil {
				t.Error(err)
			}
		} else {
			if err := r.RecvFloats(0, got); err != nil {
				t.Error(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("floats[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestReduceMin(t *testing.T) {
	s := newSession(t, 4)
	var got float64
	err := s.Run(func(r *Rank) {
		vec := []float64{float64(10 - r.ID())}
		if err := r.Reduce(0, OpMin, vec); err != nil {
			t.Error(err)
		}
		if r.ID() == 0 {
			got = vec[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("min = %v, want 7", got)
	}
}

func TestProtocolName(t *testing.T) {
	if (DefaultProtocol{}).Name() == "" {
		t.Error("empty protocol name")
	}
}
