package rcce

import (
	"bytes"
	"testing"
)

func TestCommWorld(t *testing.T) {
	s := newSession(t, 6)
	err := s.Run(func(r *Rank) {
		w := r.CommWorld()
		if w.Size() != 6 {
			t.Errorf("world size = %d", w.Size())
		}
		if w.Rank(r) != r.ID() {
			t.Errorf("world rank %d != session rank %d", w.Rank(r), r.ID())
		}
		if w.Global(3) != 3 {
			t.Error("world global mapping wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommSplitByParity(t *testing.T) {
	s := newSession(t, 8)
	err := s.Run(func(r *Rank) {
		c, err := r.CommSplit(func(g int) (int, int) { return g % 2, g })
		if err != nil {
			t.Error(err)
			return
		}
		if c.Size() != 4 {
			t.Errorf("rank %d: comm size = %d, want 4", r.ID(), c.Size())
		}
		if c.Rank(r) != r.ID()/2 {
			t.Errorf("rank %d: comm rank = %d, want %d", r.ID(), c.Rank(r), r.ID()/2)
		}
		if c.Global(c.Rank(r)) != r.ID() {
			t.Error("global/comm rank round trip broken")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommSplitKeyOrdering(t *testing.T) {
	s := newSession(t, 4)
	err := s.Run(func(r *Rank) {
		// Reverse ordering via keys: global rank g gets key -g.
		c, err := r.CommSplit(func(g int) (int, int) { return 0, -g })
		if err != nil {
			t.Error(err)
			return
		}
		if c.Global(0) != 3 || c.Global(3) != 0 {
			t.Errorf("key ordering not honoured: %v", []int{c.Global(0), c.Global(1), c.Global(2), c.Global(3)})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommSendRecv(t *testing.T) {
	s := newSession(t, 6)
	msg := pattern(512, 5)
	got := make([]byte, 512)
	err := s.Run(func(r *Rank) {
		// Odd ranks form a communicator; comm rank 0 (global 1) sends to
		// comm rank 2 (global 5).
		if r.ID()%2 == 0 {
			return
		}
		c, err := r.CommSplit(func(g int) (int, int) { return g % 2, g })
		if err != nil {
			t.Error(err)
			return
		}
		switch c.Rank(r) {
		case 0:
			c.Send(r, 2, msg)
		case 2:
			c.Recv(r, 0, got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Error("comm send/recv corrupted data")
	}
}

func TestCommBarrierOnlyBlocksMembers(t *testing.T) {
	s := newSession(t, 6)
	var nonMemberDone, memberDone uint64
	err := s.Run(func(r *Rank) {
		if r.ID()%2 == 1 {
			// Non-members proceed immediately.
			nonMemberDone++
			return
		}
		c, err := r.CommSplit(func(g int) (int, int) { return g % 2, g })
		if err != nil {
			t.Error(err)
			return
		}
		if r.ID() == 0 {
			r.Ctx().Delay(500_000) // late arrival
		}
		c.Barrier(r)
		memberDone++
	})
	if err != nil {
		t.Fatal(err)
	}
	if nonMemberDone != 3 || memberDone != 3 {
		t.Errorf("done counts = %d/%d", nonMemberDone, memberDone)
	}
}

func TestCommAllreduce(t *testing.T) {
	s := newSession(t, 9)
	results := make([]float64, 9)
	err := s.Run(func(r *Rank) {
		// Three communicators of three ranks: rows of a 3x3 grid.
		c, err := r.CommSplit(func(g int) (int, int) { return g / 3, g })
		if err != nil {
			t.Error(err)
			return
		}
		v := []float64{float64(r.ID())}
		if err := c.Allreduce(r, OpSum, v); err != nil {
			t.Error(err)
			return
		}
		results[r.ID()] = v[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	// Row sums: 0+1+2=3, 3+4+5=12, 6+7+8=21.
	for g, want := range []float64{3, 3, 3, 12, 12, 12, 21, 21, 21} {
		if results[g] != want {
			t.Errorf("rank %d allreduce = %v, want %v", g, results[g], want)
		}
	}
}

func TestCommBcast(t *testing.T) {
	s := newSession(t, 6)
	payload := pattern(100, 7)
	oks := make([]bool, 6)
	err := s.Run(func(r *Rank) {
		c, err := r.CommSplit(func(g int) (int, int) { return g % 2, g })
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, len(payload))
		if c.Rank(r) == 1 {
			copy(buf, payload)
		}
		if err := c.Bcast(r, 1, buf); err != nil {
			t.Error(err)
			return
		}
		oks[r.ID()] = bytes.Equal(buf, payload)
	})
	if err != nil {
		t.Fatal(err)
	}
	for g, ok := range oks {
		if !ok {
			t.Errorf("rank %d bcast payload wrong", g)
		}
	}
}

func TestCommValidation(t *testing.T) {
	s := newSession(t, 2)
	err := s.Run(func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		if _, err := r.newComm(nil); err == nil {
			t.Error("empty comm accepted")
		}
		if _, err := r.newComm([]int{0, 0}); err == nil {
			t.Error("duplicate member accepted")
		}
		if _, err := r.newComm([]int{1}); err == nil {
			t.Error("comm excluding the caller accepted")
		}
		if _, err := r.newComm([]int{0, 99}); err == nil {
			t.Error("out-of-range member accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
