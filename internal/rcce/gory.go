package rcce

import (
	"fmt"

	"vscc/internal/scc"
)

// The virtual-address flavour of the gory layer: on hardware, RCCE's
// one-sided API works on t_vcharp virtual addresses translated by the
// core's LUT. VAddrOf builds the address of a peer's MPB payload byte —
// through the own-device MPB window for on-chip peers and through the
// vSCC remote-device windows (the paper's §2.1 HAL extension) for peers
// on other devices.
func (r *Rank) VAddrOf(rank, off int) (scc.VAddr, error) {
	r.checkPeer(rank)
	if off < 0 || off >= PayloadBytes {
		return 0, fmt.Errorf("rcce: vaddr offset %d outside payload area", off)
	}
	pl := r.s.places[rank]
	tile := scc.CoreTile(pl.Core)
	tileOff := scc.CoreLMBOffset(pl.Core) + off
	if pl.Dev == r.place(r.id).Dev {
		return scc.MPBAddr(tile, tileOff), nil
	}
	return scc.RemoteMPBAddr(pl.Dev, tile, tileOff), nil
}

// PutV is Put through a virtual address (one-sided write, flushed).
func (r *Rank) PutV(a scc.VAddr, data []byte) error {
	r.ctx.CopyPrivate(len(data))
	if err := r.ctx.WriteV(a, data); err != nil {
		return err
	}
	r.ctx.FlushWCB()
	return nil
}

// GetV is Get through a virtual address (one-sided coherent read).
func (r *Rank) GetV(a scc.VAddr, buf []byte) error {
	r.ctx.InvalidateMPB()
	if err := r.ctx.ReadV(a, buf); err != nil {
		return err
	}
	r.ctx.CopyPrivate(len(buf))
	return nil
}
