package rcce

import (
	"vscc/internal/sim"
	"vscc/internal/trace"
)

// This file exports the low-level handshake primitives that alternative
// wire protocols build on: the pipelined protocol of package ircce and
// the host-accelerated inter-device schemes of package vscc. Application
// code should use Send/Recv and the gory interface instead.

// MPBOf returns the (device, tile, base-offset) triple locating a rank's
// MPB half — the address a protocol reads from or writes to.
func (r *Rank) MPBOf(rank int) (dev, tile, base int) {
	r.checkPeer(rank)
	return r.mpb(rank)
}

// SignalSent raises this rank's sent flag at rank dest — "data is in my
// buffer".
func (r *Rank) SignalSent(dest int) { r.setSent(dest, 1) }

// SignalReady raises this rank's ready flag at rank dest — "your buffer
// has been drained".
func (r *Rank) SignalReady(dest int) { r.setReady(dest, 1) }

// AwaitSent blocks until rank src has signalled data, then clears the
// flag (the waiter owns the clear).
func (r *Rank) AwaitSent(src int) { r.waitSent(src) }

// AwaitSentFor is AwaitSent with a cycle budget (0 = forever), reporting
// whether the flag arrived in time. On timeout the flag is left intact,
// so the wait can be retried.
func (r *Rank) AwaitSentFor(src int, budget sim.Cycles) bool {
	return r.waitClearFlagFor(sentFlagBase+src, budget)
}

// AwaitReady blocks until rank dest has acknowledged a drain, then
// clears the flag.
func (r *Rank) AwaitReady(dest int) { r.waitReady(dest) }

// AwaitReadyFor is AwaitReady with a cycle budget (0 = forever).
func (r *Rank) AwaitReadyFor(dest int, budget sim.Cycles) bool {
	return r.waitClearFlagFor(readyFlagBase+dest, budget)
}

// PeekSent reports, without yielding simulated time, whether rank src's
// sent flag is raised here. For non-blocking progress engines.
func (r *Rank) PeekSent(src int) bool {
	_, tile, base := r.mpb(r.id)
	return r.ctx.PeekLMB(tile, base+sentFlagBase+src) != 0
}

// PeekReady reports whether rank dest's ready flag is raised here.
func (r *Rank) PeekReady(dest int) bool {
	_, tile, base := r.mpb(r.id)
	return r.ctx.PeekLMB(tile, base+readyFlagBase+dest) != 0
}

// ClearSent consumes a raised sent flag (charging the local flag write).
func (r *Rank) ClearSent(src int) {
	dev, tile, base := r.mpb(r.id)
	r.ctx.WriteMPB(dev, tile, base+sentFlagBase+src, []byte{0})
	r.ctx.FlushWCB()
}

// ClearReady consumes a raised ready flag.
func (r *Rank) ClearReady(dest int) {
	dev, tile, base := r.mpb(r.id)
	r.ctx.WriteMPB(dev, tile, base+readyFlagBase+dest, []byte{0})
	r.ctx.FlushWCB()
}

// WaitAnyLocalChange blocks until any store lands in this rank's tile —
// the wake condition for every flag this rank could be waiting on, since
// RCCE spins only on local flags.
func (r *Rank) WaitAnyLocalChange() {
	_, tile, _ := r.mpb(r.id)
	r.ctx.WaitLMBChange(tile)
}

// WaitAnyLocalChangeFor is WaitAnyLocalChange with a cycle budget (0 =
// forever), reporting false when the budget expires with no store.
func (r *Rank) WaitAnyLocalChangeFor(budget sim.Cycles) bool {
	_, tile, _ := r.mpb(r.id)
	return r.ctx.WaitLMBChangeFor(tile, budget)
}

// Flag-array kinds for FlagByteAt.
const (
	FlagSent = iota
	FlagReady
	FlagGrant
	FlagDMAC
)

// FlagByteAt exposes raw flag-byte addressing for protocol extensions
// (sent, ready, grant and vDMA-completion arrays). It returns the offset
// within the rank's MPB half.
func FlagByteAt(kind, peer int) int {
	switch kind {
	case FlagSent:
		return sentFlagBase + peer
	case FlagReady:
		return readyFlagBase + peer
	case FlagGrant:
		return grantFlagBase + peer
	case FlagDMAC:
		return dmacFlagBase + peer
	}
	panic("rcce: unknown flag kind")
}

// PeekFlagByte reads a local flag byte's current value without yielding
// simulated time — the gating primitive for non-blocking progress
// engines over the value-encoded (counter) flag protocols.
func (r *Rank) PeekFlagByte(kind, peer int) byte {
	_, tile, base := r.mpb(r.id)
	return r.ctx.PeekLMB(tile, base+FlagByteAt(kind, peer))
}

// ScratchByteAt returns the offset (within a rank's MPB half) of byte i
// of the reserved scratch line at the top of the flag area. The vSCC
// runtime extension uses it for vDMA completion flags.
func ScratchByteAt(i int) int {
	if i < 0 || i >= 32 {
		panic("rcce: scratch byte index out of range")
	}
	return PayloadBytes + 5*MaxRanks + i
}

// ReportTraffic lets protocol extensions attribute delivered messages to
// the session's traffic observer (used when a scheme bypasses Send).
func (s *Session) ReportTraffic(src, dest, bytes int) { s.reportTraffic(src, dest, bytes) }

// ReportFlagTraffic lets protocol extensions attribute a flag-byte store
// by rank src to the observability sink's data-vs-flag traffic split
// (used when a protocol writes flag bytes through the gory interface
// directly).
func (s *Session) ReportFlagTraffic(src int) { s.reportFlagWrite(s.places[src].Dev) }

// Sink returns the sink rank r records into: its device's sink when
// per-device sinks are attached (the PDES configuration), the session
// sink otherwise. Protocol extensions must prefer this over
// Session.Sink so their counters stay kernel-local.
func (r *Rank) Sink() *trace.Sink { return r.s.sinkFor(r.place(r.id).Dev) }
