package rcce

import (
	"encoding/binary"
	"math"
)

// Barrier synchronizes all ranks of the session (RCCE_barrier over the
// whole "world" communicator). It is flag-based: every rank reports to
// rank 0 with a generation byte, and rank 0 releases everyone.
func (r *Rank) Barrier() {
	r.gen++
	if r.gen == 0 { // generation 0 means "idle"; skip it on wrap
		r.gen = 1
	}
	gen := r.gen
	n := r.s.NumRanks()
	if n == 1 {
		return
	}
	_, myTile, myBase := r.mpb(r.id)
	if r.id == 0 {
		// Gather: wait for every rank's arrival byte in our barrier array.
		for peer := 1; peer < n; peer++ {
			off := myBase + barrierFlagBase + peer
			r.ctx.WaitFlag(myTile, off, func(b byte) bool { return b == gen })
		}
		// Release: write the generation into everyone's release slot.
		for peer := 1; peer < n; peer++ {
			r.writeFlag(peer, barrierFlagBase+0, gen)
		}
		return
	}
	// Report arrival at rank 0, then wait for the release.
	r.writeFlag(0, barrierFlagBase+r.id, gen)
	r.ctx.WaitFlag(myTile, myBase+barrierFlagBase+0, func(b byte) bool { return b == gen })
}

// Bcast broadcasts data from root to all ranks (every rank passes the
// same length; non-roots receive into data).
func (r *Rank) Bcast(root int, data []byte) error {
	r.checkPeer(root)
	if r.s.NumRanks() == 1 {
		return nil
	}
	if r.id == root {
		for peer := 0; peer < r.s.NumRanks(); peer++ {
			if peer == root {
				continue
			}
			if err := r.Send(peer, data); err != nil {
				return err
			}
		}
		return nil
	}
	return r.Recv(root, data)
}

// ReduceOp is a combining operator for Reduce/Allreduce.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func (op ReduceOp) apply(a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	}
	panic("rcce: unknown reduce op")
}

// Reduce combines vec element-wise across all ranks with op; the result
// lands in vec on root only. Mirrors RCCE_reduce for doubles.
func (r *Rank) Reduce(root int, op ReduceOp, vec []float64) error {
	r.checkPeer(root)
	n := r.s.NumRanks()
	if n == 1 {
		return nil
	}
	buf := make([]byte, 8*len(vec))
	if r.id == root {
		tmp := make([]float64, len(vec))
		for peer := 0; peer < n; peer++ {
			if peer == root {
				continue
			}
			if err := r.Recv(peer, buf); err != nil {
				return err
			}
			decodeFloats(buf, tmp)
			for i := range vec {
				vec[i] = op.apply(vec[i], tmp[i])
			}
			// Charge the combine loop (1 flop per element).
			r.ComputeFlops(float64(len(vec)))
		}
		return nil
	}
	encodeFloats(vec, buf)
	return r.Send(root, buf)
}

// Allreduce is Reduce followed by Bcast of the result.
func (r *Rank) Allreduce(op ReduceOp, vec []float64) error {
	if err := r.Reduce(0, op, vec); err != nil {
		return err
	}
	buf := make([]byte, 8*len(vec))
	if r.id == 0 {
		encodeFloats(vec, buf)
	}
	if err := r.Bcast(0, buf); err != nil {
		return err
	}
	decodeFloats(buf, vec)
	return nil
}

// SendFloats sends a float64 vector to dest.
func (r *Rank) SendFloats(dest int, vec []float64) error {
	buf := make([]byte, 8*len(vec))
	encodeFloats(vec, buf)
	return r.Send(dest, buf)
}

// RecvFloats receives a float64 vector from src.
func (r *Rank) RecvFloats(src int, vec []float64) error {
	buf := make([]byte, 8*len(vec))
	if err := r.Recv(src, buf); err != nil {
		return err
	}
	decodeFloats(buf, vec)
	return nil
}

func encodeFloats(vec []float64, buf []byte) {
	for i, v := range vec {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
}

func decodeFloats(buf []byte, vec []float64) {
	for i := range vec {
		vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
}
