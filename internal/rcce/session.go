// Package rcce is a Go port of RCCE, Intel Labs' light-weight
// communication environment for the SCC research processor, running on
// the simulated chip of package scc.
//
// Like the reference implementation it is layered: a one-sided "gory"
// interface (Put, Get, flags, MPB allocation) abstracts the hardware, and
// a two-sided "non-gory" interface (Send, Recv) implements blocking
// message passing over it with the default local-put/remote-get scheme.
// Synchronization is flag-based; a core spins only on flags in its own
// MPB (paper §3.1). Protocols are pluggable so that iRCCE (package
// ircce) and the vSCC inter-device schemes (package vscc) can replace the
// wire protocol per rank pair.
package rcce

import (
	"errors"
	"fmt"
	"sort"

	"vscc/internal/fault"
	"vscc/internal/mem"
	"vscc/internal/scc"
	"vscc/internal/sim"
	"vscc/internal/trace"
)

// MaxRanks bounds a session; the vSCC grid of five devices has 240 cores.
const MaxRanks = 256

// ErrDeviceLost is the deterministic error surfaced when a blocking
// operation's peer device crashes or loses its link and transparent
// retry is not enabled (fault spec devretry=0). Callers match it with
// errors.Is on the error returned by Run. The sentinel itself lives in
// package fault so layers below rcce (the host fabric's forwarded-read
// path) can raise the same instance.
var ErrDeviceLost = fault.ErrDeviceLost

// ErrAborted is the deterministic error delivered to ranks killed by
// Session.Abort: a supervisor (the job scheduler's devretry path) tore
// the session down instead of waiting for stranded ranks to return.
// Callers match it with errors.Is.
var ErrAborted = errors.New("rcce: rank aborted")

// Flag area layout: each rank's 8 KB MPB half reserves the top
// 2*MaxRanks bytes for the sent/ready flag arrays, indexed by peer rank.
const (
	// flagBytes reserves the sent, ready, barrier, grant and
	// DMA-completion flag arrays plus one scratch line at the top of
	// each rank's MPB half.
	flagBytes = 5*MaxRanks + 32
	// PayloadBytes is the per-rank MPB space available for message
	// payload and user allocations — the "MPB" of the paper, 8 KB minus
	// flags. Messages larger than the communication buffer are split
	// (the 8 kB throughput drop of Fig. 6b).
	PayloadBytes = mem.CoreLMBSize - flagBytes
)

// Place locates a rank on the grid: device index and core id.
type Place struct {
	Dev  int
	Core int
}

// Session is one RCCE program run: a set of ranks mapped onto cores of
// one or more devices.
type Session struct {
	Kernel *sim.Kernel
	chips  []*scc.Chip
	places []Place

	protocol Protocol
	timeline *sim.Timeline
	sink     *trace.Sink

	// devSinks, when set, routes each rank's observability to its own
	// device's sink (indexed by device). Under PDES every device is a
	// separate kernel, and trace.Sink is deliberately not
	// concurrency-safe — per-device sinks keep all recording
	// kernel-local. Devices beyond the slice (or nil entries) fall back
	// to the session sink.
	devSinks []*trace.Sink

	// runner, when set, replaces Kernel.Run as the engine that drives
	// the session (the PDES barrier-window engine plugs in here). The
	// NPB harness path — session.Run(program) — stays identical either
	// way.
	runner func() error

	// onTraffic, if set, observes every completed point-to-point message
	// (used to build the paper's Fig. 8 traffic matrix). The callback
	// runs on the reporting rank's kernel: under PDES that means
	// concurrently from several kernels, so PDES sessions must not
	// attach one.
	onTraffic func(src, dest, bytes int)

	// barrier state: a generation counter per rank pair of flag slots.
	barrierGen []byte

	// errs holds one slot per rank (single-writer per rank, so rank
	// panics on different kernels never race); Run reports the
	// lowest-rank error.
	errs []error

	// procs holds each launched rank's simulated process (nil before
	// Launch), so a supervisor can Abort stranded ranks.
	procs []*sim.Proc
}

// Option configures a session.
type Option func(*Session)

// WithProtocol replaces the default blocking local-put/remote-get
// protocol.
func WithProtocol(p Protocol) Option { return func(s *Session) { s.protocol = p } }

// WithTimeline records protocol phases for Fig. 2 style diagrams.
func WithTimeline(t *sim.Timeline) Option { return func(s *Session) { s.timeline = t } }

// WithTrafficObserver registers a callback for every delivered message.
func WithTrafficObserver(fn func(src, dest, bytes int)) Option {
	return func(s *Session) { s.onTraffic = fn }
}

// WithSink attaches an observability sink: the session then records the
// message-size histogram and the data-versus-flag traffic split, and
// protocol extensions (ircce, vscc) pick the sink up through Sink().
func WithSink(sink *trace.Sink) Option { return func(s *Session) { s.sink = sink } }

// WithDeviceSinks attaches one sink per device so every rank records
// into a sink owned by its own kernel (required under PDES, where a
// shared sink would race).
func WithDeviceSinks(sinks []*trace.Sink) Option {
	return func(s *Session) { s.devSinks = sinks }
}

// WithRunner replaces the engine that drives Run. The default is the
// session kernel's own Run loop; the vSCC PDES mode substitutes the
// barrier-window engine so NPB programs run unchanged on either.
func WithRunner(run func() error) Option { return func(s *Session) { s.runner = run } }

// NewSession creates a session over explicit placements. chips must be
// indexed by device number and cover every Place.Dev.
func NewSession(k *sim.Kernel, chips []*scc.Chip, places []Place, opts ...Option) (*Session, error) {
	if len(places) == 0 {
		return nil, errors.New("rcce: session with zero ranks")
	}
	if len(places) > MaxRanks {
		return nil, fmt.Errorf("rcce: %d ranks exceeds MaxRanks=%d", len(places), MaxRanks)
	}
	seen := map[Place]bool{}
	for i, pl := range places {
		if pl.Dev < 0 || pl.Dev >= len(chips) || chips[pl.Dev] == nil {
			return nil, fmt.Errorf("rcce: rank %d placed on unknown device %d", i, pl.Dev)
		}
		if pl.Core < 0 || pl.Core >= scc.NumCores {
			return nil, fmt.Errorf("rcce: rank %d placed on invalid core %d", i, pl.Core)
		}
		if !chips[pl.Dev].Alive(pl.Core) {
			return nil, fmt.Errorf("rcce: rank %d placed on failed core %d of device %d", i, pl.Core, pl.Dev)
		}
		if seen[pl] {
			return nil, fmt.Errorf("rcce: duplicate placement %+v", pl)
		}
		seen[pl] = true
	}
	s := &Session{
		Kernel:     k,
		chips:      chips,
		places:     places,
		barrierGen: make([]byte, len(places)),
		errs:       make([]error, len(places)),
		procs:      make([]*sim.Proc, len(places)),
	}
	for _, o := range opts {
		o(s)
	}
	if s.protocol == nil {
		s.protocol = DefaultProtocol{}
	}
	return s, nil
}

// LinearPlaces builds the default vSCC rank mapping (paper §3): all cores
// of device 0 in a linear way, continuing on device 1 starting with rank
// 48, and so on. Failed cores are skipped, reproducing the extended RCCE
// startup script that writes a configuration file of available cores
// before the application run (paper §4).
func LinearPlaces(chips []*scc.Chip, n int) ([]Place, error) {
	var places []Place
	for dev, chip := range chips {
		alive := chip.AliveCores()
		sort.Ints(alive)
		for _, core := range alive {
			places = append(places, Place{Dev: dev, Core: core})
		}
	}
	if n > len(places) {
		return nil, fmt.Errorf("rcce: requested %d ranks, only %d cores available", n, len(places))
	}
	return places[:n], nil
}

// DescendingPlaces mirrors the RCCE default on a single chip, where
// ranks map to physical cores sorted in descending id order (paper §3).
func DescendingPlaces(chip *scc.Chip, n int) ([]Place, error) {
	alive := chip.AliveCores()
	sort.Sort(sort.Reverse(sort.IntSlice(alive)))
	if n > len(alive) {
		return nil, fmt.Errorf("rcce: requested %d ranks, only %d cores available", n, len(alive))
	}
	places := make([]Place, n)
	for i := 0; i < n; i++ {
		places[i] = Place{Dev: chip.Index, Core: alive[i]}
	}
	return places, nil
}

// NumRanks returns the session size.
func (s *Session) NumRanks() int { return len(s.places) }

// PlaceOf returns a rank's placement.
func (s *Session) PlaceOf(rank int) Place { return s.places[rank] }

// Chip returns the device a rank runs on.
func (s *Session) Chip(rank int) *scc.Chip { return s.chips[s.places[rank].Dev] }

// Protocol returns the active wire protocol.
func (s *Session) Protocol() Protocol { return s.protocol }

// Timeline returns the session's timeline (may be nil).
func (s *Session) Timeline() *sim.Timeline { return s.timeline }

// Sink returns the session's observability sink (nil when tracing is
// disabled; a nil sink's methods are no-ops).
func (s *Session) Sink() *trace.Sink { return s.sink }

// SameDevice reports whether two ranks share a device.
func (s *Session) SameDevice(a, b int) bool { return s.places[a].Dev == s.places[b].Dev }

// Launch starts program as rank's process. Most callers use Run instead.
func (s *Session) Launch(rank int, program func(*Rank)) {
	pl := s.places[rank]
	chip := s.chips[pl.Dev]
	name := fmt.Sprintf("rank%03d(d%d.c%02d)", rank, pl.Dev, pl.Core)
	s.procs[rank] = chip.Launch(pl.Core, name, func(ctx *scc.Ctx) {
		r := &Rank{s: s, id: rank, ctx: ctx}
		r.initMPB()
		defer func() {
			if rec := recover(); rec != nil {
				if err, ok := rec.(error); ok {
					// Preserve error identity (errors.Is on
					// ErrDeviceLost and friends) through the panic.
					s.errs[rank] = fmt.Errorf("rcce: rank %d panicked: %w", rank, err)
				} else {
					s.errs[rank] = fmt.Errorf("rcce: rank %d panicked: %v", rank, rec)
				}
			}
		}()
		program(r)
	})
}

// Run launches program on every rank (SPMD) and drives the simulation to
// completion. It returns the first rank error or a kernel error
// (deadlock, panic).
func (s *Session) Run(program func(*Rank)) error {
	for rank := range s.places {
		s.Launch(rank, program)
	}
	drive := s.runner
	if drive == nil {
		drive = s.Kernel.Run
	}
	driveErr := drive()
	// Rank errors outrank engine errors: a rank that panicked out of a
	// handshake routinely strands its peer, and the resulting deadlock
	// report would mask the root cause.
	for _, err := range s.errs {
		if err != nil {
			return err
		}
	}
	return driveErr
}

// Abort kills every launched rank process that has not finished, with an
// error wrapping both cause and ErrAborted. Each killed rank unwinds at
// its next resume point (Proc.Kill), so ranks parked forever on a lost
// peer's flags terminate deterministically at the abort cycle; Launch's
// recovery records the error as the rank's terminal status. Finished
// ranks are untouched. Must be called from kernel context.
func (s *Session) Abort(cause error) {
	err := fmt.Errorf("%w: %v", ErrAborted, cause)
	for _, p := range s.procs {
		if p != nil {
			p.Kill(err)
		}
	}
}

// Err returns the lowest-rank error recorded by ranks launched with
// Launch, once the kernel has been driven — the completion status a
// scheduler reads for a session it launched rank by rank instead of
// through Run.
func (s *Session) Err() error {
	for _, err := range s.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sinkFor returns the sink a given device's ranks record into: the
// per-device sink when one is attached, the session sink otherwise.
func (s *Session) sinkFor(dev int) *trace.Sink {
	if dev >= 0 && dev < len(s.devSinks) && s.devSinks[dev] != nil {
		return s.devSinks[dev]
	}
	return s.sink
}

// reportTraffic notifies the traffic observer of one delivered message,
// attributing the counters to the sending rank's device sink.
func (s *Session) reportTraffic(src, dest, bytes int) {
	if s.onTraffic != nil {
		s.onTraffic(src, dest, bytes)
	}
	sink := s.sinkFor(s.places[src].Dev)
	sink.Add("rcce.msgs", 1)
	sink.Add("rcce.data_bytes", int64(bytes))
	sink.Observe("rcce.msg_size", float64(bytes))
}

// reportFlagWrite attributes one flag-byte store by a rank on dev to
// the sink — the "flag traffic" side of the data-vs-flag split.
func (s *Session) reportFlagWrite(dev int) {
	sink := s.sinkFor(dev)
	sink.Add("rcce.flag_writes", 1)
	sink.Add("rcce.flag_bytes", 1)
}
