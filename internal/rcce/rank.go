package rcce

import (
	"fmt"
	"sort"

	"vscc/internal/mem"
	"vscc/internal/scc"
	"vscc/internal/sim"
)

// Flag-area layout within each rank's 8 KB MPB half, from the top:
//
//	[PayloadBytes                , +MaxRanks) sent flags, indexed by sender
//	[PayloadBytes +   MaxRanks   , +MaxRanks) ready flags, indexed by receiver
//	[PayloadBytes + 2*MaxRanks   , +MaxRanks) barrier flags (slot 0 = release)
//	[PayloadBytes + 3*MaxRanks   , +MaxRanks) grant flags (vSCC buffer credits)
//	[PayloadBytes + 4*MaxRanks   , +MaxRanks) vDMA completion flags
//	[PayloadBytes + 5*MaxRanks   , +32)       reserved scratch line
const (
	sentFlagBase    = PayloadBytes
	readyFlagBase   = PayloadBytes + MaxRanks
	barrierFlagBase = PayloadBytes + 2*MaxRanks
	grantFlagBase   = PayloadBytes + 3*MaxRanks
	dmacFlagBase    = PayloadBytes + 4*MaxRanks
)

// Rank is one RCCE process: the handle a rank's program uses for all
// communication. It is bound to the simulated core process and must not
// be shared across processes.
type Rank struct {
	s   *Session
	id  int
	ctx *scc.Ctx

	gen    byte // barrier generation
	haveCB bool

	// MPB allocator state (top-down bump with free list, line granular).
	allocLow  int // lowest allocated offset; chunk area is [0, allocLow)
	allocs    map[int]int
	freeSpans map[int]int
}

func (r *Rank) initMPB() {
	r.allocLow = PayloadBytes
	r.allocs = make(map[int]int)
	r.freeSpans = make(map[int]int)
	r.gen = 0
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// N returns the session size (RCCE_num_ues).
func (r *Rank) N() int { return r.s.NumRanks() }

// Session returns the owning session.
func (r *Rank) Session() *Session { return r.s }

// Ctx exposes the underlying core context for advanced use (compute
// accounting, raw MPB access).
func (r *Rank) Ctx() *scc.Ctx { return r.ctx }

// Now returns the current simulated time.
func (r *Rank) Now() sim.Cycles { return r.ctx.Now() }

// ComputeFlops charges floating-point work to the rank's core.
func (r *Rank) ComputeFlops(n float64) { r.ctx.ComputeFlops(n) }

// place returns the placement of any rank.
func (r *Rank) place(rank int) Place { return r.s.places[rank] }

// mpb returns the (dev, tile, base) triple of a rank's MPB half.
func (r *Rank) mpb(rank int) (dev, tile, base int) {
	pl := r.s.places[rank]
	return pl.Dev, scc.CoreTile(pl.Core), scc.CoreLMBOffset(pl.Core)
}

func (r *Rank) checkPeer(rank int) {
	if rank < 0 || rank >= r.s.NumRanks() {
		panic(fmt.Sprintf("rcce: rank %d out of range [0,%d)", rank, r.s.NumRanks()))
	}
}

// --- gory one-sided interface -------------------------------------------

// Put copies data from private memory into the MPB of rank dest at
// payload offset off (RCCE_put). The store is flushed before returning.
func (r *Rank) Put(dest, off int, data []byte) {
	r.checkPeer(dest)
	if off < 0 || off+len(data) > PayloadBytes {
		panic(fmt.Sprintf("rcce: put [%d,%d) outside payload area", off, off+len(data)))
	}
	dev, tile, base := r.mpb(dest)
	r.ctx.CopyPrivate(len(data))
	r.ctx.WriteMPB(dev, tile, base+off, data)
	r.ctx.FlushWCB()
}

// Get copies len(buf) bytes from the MPB of rank src at payload offset
// off into private memory (RCCE_get), invalidating stale L1 state first.
func (r *Rank) Get(src, off int, buf []byte) {
	r.checkPeer(src)
	if off < 0 || off+len(buf) > PayloadBytes {
		panic(fmt.Sprintf("rcce: get [%d,%d) outside payload area", off, off+len(buf)))
	}
	dev, tile, base := r.mpb(src)
	r.ctx.InvalidateMPB()
	r.ctx.ReadMPB(dev, tile, base+off, buf)
	r.ctx.CopyPrivate(len(buf))
}

// --- flags ----------------------------------------------------------------

// setSent raises this rank's sent flag at rank dest.
func (r *Rank) setSent(dest int, v byte) { r.writeFlag(dest, sentFlagBase+r.id, v) }

// setReady raises this rank's ready flag at rank dest (the ack path).
func (r *Rank) setReady(dest int, v byte) { r.writeFlag(dest, readyFlagBase+r.id, v) }

// waitSent spins on the local sent flag for peer src until it is raised,
// then clears it (the waiter owns the clear).
func (r *Rank) waitSent(src int) { r.waitClearFlag(sentFlagBase + src) }

// waitReady spins on the local ready flag for peer dest until raised,
// then clears it.
func (r *Rank) waitReady(dest int) { r.waitClearFlag(readyFlagBase + dest) }

// writeFlag writes one flag byte in rank dest's MPB and flushes.
func (r *Rank) writeFlag(dest, off int, v byte) {
	dev, tile, base := r.mpb(dest)
	r.ctx.WriteMPB(dev, tile, base+off, []byte{v})
	r.ctx.FlushWCB()
	r.s.reportFlagWrite(r.place(r.id).Dev)
}

// waitClearFlag spins until the local flag at off is non-zero, then
// clears it (the waiter owns the clear).
func (r *Rank) waitClearFlag(off int) { r.waitClearFlagFor(off, 0) }

// waitClearFlagFor is waitClearFlag with a cycle budget (0 = forever),
// reporting whether the flag arrived — and was cleared — in time.
func (r *Rank) waitClearFlagFor(off int, budget sim.Cycles) bool {
	_, tile, base := r.mpb(r.id)
	if _, ok := r.ctx.WaitFlagFor(tile, base+off, func(b byte) bool { return b != 0 }, budget); !ok {
		return false
	}
	r.ctx.WriteMPB(r.place(r.id).Dev, tile, base+off, []byte{0})
	r.ctx.FlushWCB()
	r.s.reportFlagWrite(r.place(r.id).Dev)
	return true
}

// Flag is a user-visible synchronization flag allocated from MPB space.
type Flag struct{ off int }

// AllocFlag allocates one flag line from the MPB (collective: every rank
// must allocate in the same order, as with RCCE_flag_alloc).
func (r *Rank) AllocFlag() (Flag, error) {
	off, err := r.MallocMPB(mem.LineSize)
	if err != nil {
		return Flag{}, err
	}
	return Flag{off: off}, nil
}

// FlagSet writes v to the flag in rank dest's MPB.
func (r *Rank) FlagSet(dest int, f Flag, v byte) {
	r.checkPeer(dest)
	r.writeFlag(dest, f.off, v)
}

// FlagWait spins until this rank's local copy of the flag reads v.
func (r *Rank) FlagWait(f Flag, v byte) {
	_, tile, base := r.mpb(r.id)
	r.ctx.WaitFlag(tile, base+f.off, func(b byte) bool { return b == v })
}

// FlagRead performs one coherent read of the local flag.
func (r *Rank) FlagRead(f Flag) byte {
	_, tile, base := r.mpb(r.id)
	return r.ctx.ReadFlag(tile, base+f.off)
}

// --- MPB allocator ---------------------------------------------------------

// MallocMPB allocates size bytes (rounded to 32 B lines) of this rank's
// MPB payload area, top-down (RCCE_malloc). Allocations shrink the space
// Send/Recv may use for chunking; programs should not interleave large
// blocking transfers with exhausted MPB heaps.
func (r *Rank) MallocMPB(size int) (int, error) {
	if size <= 0 {
		return 0, fmt.Errorf("rcce: malloc of %d bytes", size)
	}
	size = (size + mem.LineSize - 1) &^ (mem.LineSize - 1)
	// First fit in the free list, scanned in ascending offset order:
	// freeSpans is a map, and ranging it directly would let Go's
	// randomized iteration pick WHICH span satisfies the request — the
	// returned offset, and with it every subsequent MPB image, would
	// differ between byte-identical reruns (detorder's early-exit case).
	offs := make([]int, 0, len(r.freeSpans))
	for off := range r.freeSpans {
		offs = append(offs, off)
	}
	sort.Ints(offs)
	for _, off := range offs {
		if n := r.freeSpans[off]; n >= size {
			delete(r.freeSpans, off)
			if n > size {
				r.freeSpans[off+size] = n - size
			}
			r.allocs[off] = size
			return off, nil
		}
	}
	if r.allocLow-size < 0 {
		return 0, fmt.Errorf("rcce: MPB exhausted: %d bytes requested, %d free", size, r.allocLow)
	}
	r.allocLow -= size
	off := r.allocLow
	r.allocs[off] = size
	return off, nil
}

// FreeMPB releases an allocation made by MallocMPB.
func (r *Rank) FreeMPB(off int) error {
	size, ok := r.allocs[off]
	if !ok {
		return fmt.Errorf("rcce: free of unallocated offset %d", off)
	}
	delete(r.allocs, off)
	if off == r.allocLow {
		r.allocLow += size
		// Coalesce adjacent free spans back into the bump area.
		for {
			n, ok := r.freeSpans[r.allocLow]
			if !ok {
				break
			}
			delete(r.freeSpans, r.allocLow)
			r.allocLow += n
		}
		return nil
	}
	r.freeSpans[off] = size
	return nil
}

// MPBFree reports the bytes available to Send/Recv chunking.
func (r *Rank) MPBFree() int { return r.allocLow }

// --- two-sided interface -----------------------------------------------

// Send transmits data to rank dest, blocking until the receiver has
// drained the message (RCCE_send semantics). The wire protocol is the
// session's Protocol.
func (r *Rank) Send(dest int, data []byte) error {
	r.checkPeer(dest)
	if dest == r.id {
		return fmt.Errorf("rcce: rank %d sending to itself", r.id)
	}
	r.s.protocol.Send(r, dest, data)
	r.s.reportTraffic(r.id, dest, len(data))
	return nil
}

// Recv receives exactly len(buf) bytes from rank src, blocking until the
// message arrived (RCCE_recv semantics).
func (r *Rank) Recv(src int, buf []byte) error {
	r.checkPeer(src)
	if src == r.id {
		return fmt.Errorf("rcce: rank %d receiving from itself", r.id)
	}
	r.s.protocol.Recv(r, src, buf)
	return nil
}
