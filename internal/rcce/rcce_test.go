package rcce

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"vscc/internal/scc"
	"vscc/internal/sim"
)

// newSession builds a single-chip session with n ranks on ascending cores.
func newSession(t testing.TB, n int, opts ...Option) *Session {
	t.Helper()
	k := sim.NewKernel()
	chip := scc.NewChip(k, 0, scc.DefaultParams())
	places, err := LinearPlaces([]*scc.Chip{chip}, n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(k, []*scc.Chip{chip}, places, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + seed
	}
	return b
}

func TestSendRecvSmall(t *testing.T) {
	s := newSession(t, 2)
	msg := []byte("hello scc")
	got := make([]byte, len(msg))
	err := s.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			if err := r.Send(1, msg); err != nil {
				t.Error(err)
			}
		case 1:
			if err := r.Recv(0, got); err != nil {
				t.Error(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q, want %q", got, msg)
	}
}

func TestSendRecvMultiChunk(t *testing.T) {
	// A 20 KB message splits into three chunks (paper: messages that do
	// not fit into the MPB are transferred consecutively).
	s := newSession(t, 2)
	msg := pattern(20*1024, 3)
	got := make([]byte, len(msg))
	err := s.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, msg)
		case 1:
			r.Recv(0, got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Error("multi-chunk payload corrupted")
	}
}

func TestSendRecvExactChunkBoundary(t *testing.T) {
	for _, size := range []int{ChunkBytes - 1, ChunkBytes, ChunkBytes + 1, 2 * ChunkBytes} {
		size := size
		t.Run(fmt.Sprint(size), func(t *testing.T) {
			s := newSession(t, 2)
			msg := pattern(size, byte(size))
			got := make([]byte, size)
			err := s.Run(func(r *Rank) {
				if r.ID() == 0 {
					r.Send(1, msg)
				} else {
					r.Recv(0, got)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Error("payload corrupted at chunk boundary")
			}
		})
	}
}

func TestSendBlocksUntilRecv(t *testing.T) {
	// Blocking semantics: the send must not complete before the receiver
	// has drained the message (paper §2.2).
	s := newSession(t, 2)
	var sendDone, recvStart sim.Cycles
	err := s.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, make([]byte, 1024))
			sendDone = r.Now()
		} else {
			r.Ctx().Delay(500_000) // receiver is late
			recvStart = r.Now()
			r.Recv(0, make([]byte, 1024))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sendDone < recvStart {
		t.Errorf("send completed at %d before receive started at %d", sendDone, recvStart)
	}
}

func TestBidirectionalPairsNoDeadlockOrdered(t *testing.T) {
	// Classic exchange with rank-ordered send/recv.
	s := newSession(t, 2)
	a, b := pattern(4096, 1), pattern(4096, 2)
	gota, gotb := make([]byte, 4096), make([]byte, 4096)
	err := s.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, a)
			r.Recv(1, gotb)
		} else {
			r.Recv(0, gota)
			r.Send(0, b)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gota, a) || !bytes.Equal(gotb, b) {
		t.Error("exchange corrupted payloads")
	}
}

func TestRingAllRanks(t *testing.T) {
	const n = 8
	s := newSession(t, n)
	results := make([][]byte, n)
	err := s.Run(func(r *Rank) {
		me := r.ID()
		msg := pattern(2048, byte(me))
		got := make([]byte, 2048)
		next := (me + 1) % n
		prev := (me + n - 1) % n
		if me%2 == 0 {
			r.Send(next, msg)
			r.Recv(prev, got)
		} else {
			r.Recv(prev, got)
			r.Send(next, msg)
		}
		results[me] = got
	})
	if err != nil {
		t.Fatal(err)
	}
	for me := 0; me < n; me++ {
		prev := (me + n - 1) % n
		if !bytes.Equal(results[me], pattern(2048, byte(prev))) {
			t.Errorf("rank %d got wrong ring payload", me)
		}
	}
}

func TestSendToSelfRejected(t *testing.T) {
	s := newSession(t, 2)
	var sendErr, recvErr error
	err := s.Run(func(r *Rank) {
		if r.ID() == 0 {
			sendErr = r.Send(0, []byte{1})
			recvErr = r.Recv(0, make([]byte, 1))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sendErr == nil || recvErr == nil {
		t.Error("self send/recv should error")
	}
}

func TestPutGetGory(t *testing.T) {
	s := newSession(t, 2)
	data := pattern(512, 9)
	got := make([]byte, 512)
	err := s.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			f, _ := r.AllocFlag()
			r.Put(1, 64, data) // one-sided put into rank 1's MPB
			r.FlagSet(1, f, 1)
		case 1:
			f, _ := r.AllocFlag()
			r.FlagWait(f, 1)
			r.Get(1, 64, got) // read own MPB
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("gory put/get corrupted data")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const n = 16
	s := newSession(t, n)
	after := make([]sim.Cycles, n)
	var latest sim.Cycles
	err := s.Run(func(r *Rank) {
		// Rank i works i*10000 cycles, so arrival times spread widely.
		r.Ctx().Delay(sim.Cycles(r.ID()) * 10_000)
		if t0 := r.Now(); t0 > latest {
			latest = t0
		}
		r.Barrier()
		after[r.ID()] = r.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range after {
		if a < latest {
			t.Errorf("rank %d left the barrier at %d, before the last arrival at %d", i, a, latest)
		}
	}
}

func TestBarrierRepeated(t *testing.T) {
	const n, rounds = 6, 30
	s := newSession(t, n)
	counts := make([]int, n)
	err := s.Run(func(r *Rank) {
		for i := 0; i < rounds; i++ {
			r.Barrier()
			counts[r.ID()]++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != rounds {
			t.Errorf("rank %d completed %d barriers, want %d", i, c, rounds)
		}
	}
}

func TestBcast(t *testing.T) {
	const n = 7
	s := newSession(t, n)
	payload := pattern(3000, 5)
	got := make([][]byte, n)
	err := s.Run(func(r *Rank) {
		buf := make([]byte, len(payload))
		if r.ID() == 2 {
			copy(buf, payload)
		}
		if err := r.Bcast(2, buf); err != nil {
			t.Error(err)
		}
		got[r.ID()] = buf
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(got[i], payload) {
			t.Errorf("rank %d bcast payload wrong", i)
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	const n = 5
	s := newSession(t, n)
	results := make([][]float64, n)
	err := s.Run(func(r *Rank) {
		vec := []float64{float64(r.ID()), 1, -float64(r.ID())}
		if err := r.Allreduce(OpSum, vec); err != nil {
			t.Error(err)
		}
		results[r.ID()] = vec
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 5, -10} // sum of 0..4
	for i, vec := range results {
		for j := range want {
			if vec[j] != want[j] {
				t.Errorf("rank %d allreduce[%d] = %v, want %v", i, j, vec[j], want[j])
			}
		}
	}
}

func TestReduceMax(t *testing.T) {
	const n = 4
	s := newSession(t, n)
	var got []float64
	err := s.Run(func(r *Rank) {
		vec := []float64{float64(r.ID() * r.ID())}
		if err := r.Reduce(0, OpMax, vec); err != nil {
			t.Error(err)
		}
		if r.ID() == 0 {
			got = vec
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 {
		t.Errorf("max = %v, want 9", got[0])
	}
}

func TestMallocMPB(t *testing.T) {
	s := newSession(t, 1)
	err := s.Run(func(r *Rank) {
		before := r.MPBFree()
		off1, err := r.MallocMPB(100) // rounds to 128
		if err != nil {
			t.Error(err)
		}
		off2, err := r.MallocMPB(32)
		if err != nil {
			t.Error(err)
		}
		if off1 == off2 {
			t.Error("allocations overlap")
		}
		if r.MPBFree() != before-160 {
			t.Errorf("free = %d, want %d", r.MPBFree(), before-160)
		}
		if err := r.FreeMPB(off2); err != nil {
			t.Error(err)
		}
		if err := r.FreeMPB(off1); err != nil {
			t.Error(err)
		}
		if r.MPBFree() != before {
			t.Errorf("free after release = %d, want %d", r.MPBFree(), before)
		}
		if err := r.FreeMPB(12345); err == nil {
			t.Error("free of bogus offset should error")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMallocExhaustion(t *testing.T) {
	s := newSession(t, 1)
	err := s.Run(func(r *Rank) {
		if _, err := r.MallocMPB(PayloadBytes + 32); err == nil {
			t.Error("oversized malloc should fail")
		}
		// Exhaust then fail.
		if _, err := r.MallocMPB(PayloadBytes); err != nil {
			t.Errorf("exact-fit malloc failed: %v", err)
		}
		if _, err := r.MallocMPB(32); err == nil {
			t.Error("malloc on exhausted MPB should fail")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLinearPlacesSkipsFailedCores(t *testing.T) {
	k := sim.NewKernel()
	chip := scc.NewChip(k, 0, scc.DefaultParams())
	chip.SetAlive(0, false)
	chip.SetAlive(5, false)
	places, err := LinearPlaces([]*scc.Chip{chip}, 46)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range places {
		if pl.Core == 0 || pl.Core == 5 {
			t.Errorf("failed core %d mapped to a rank", pl.Core)
		}
	}
	if _, err := LinearPlaces([]*scc.Chip{chip}, 47); err == nil {
		t.Error("requesting more ranks than available cores should fail")
	}
}

func TestDescendingPlaces(t *testing.T) {
	k := sim.NewKernel()
	chip := scc.NewChip(k, 0, scc.DefaultParams())
	places, err := DescendingPlaces(chip, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{47, 46, 45, 44}
	for i, pl := range places {
		if pl.Core != want[i] {
			t.Errorf("rank %d on core %d, want %d", i, pl.Core, want[i])
		}
	}
}

func TestSessionValidation(t *testing.T) {
	k := sim.NewKernel()
	chip := scc.NewChip(k, 0, scc.DefaultParams())
	chips := []*scc.Chip{chip}
	if _, err := NewSession(k, chips, nil); err == nil {
		t.Error("empty session should fail")
	}
	if _, err := NewSession(k, chips, []Place{{Dev: 1, Core: 0}}); err == nil {
		t.Error("unknown device should fail")
	}
	if _, err := NewSession(k, chips, []Place{{Dev: 0, Core: 99}}); err == nil {
		t.Error("invalid core should fail")
	}
	if _, err := NewSession(k, chips, []Place{{Dev: 0, Core: 3}, {Dev: 0, Core: 3}}); err == nil {
		t.Error("duplicate placement should fail")
	}
	chip.SetAlive(7, false)
	if _, err := NewSession(k, chips, []Place{{Dev: 0, Core: 7}}); err == nil {
		t.Error("placement on failed core should fail")
	}
}

func TestTrafficObserver(t *testing.T) {
	var events []string
	s := newSession(t, 3, WithTrafficObserver(func(src, dest, bytes int) {
		events = append(events, fmt.Sprintf("%d->%d:%d", src, dest, bytes))
	}))
	err := s.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, make([]byte, 100))
			r.Send(2, make([]byte, 200))
		case 1:
			r.Recv(0, make([]byte, 100))
		case 2:
			r.Recv(0, make([]byte, 200))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("observed %d messages, want 2: %v", len(events), events)
	}
}

func TestTimelineRecordsProtocolPhases(t *testing.T) {
	k := sim.NewKernel()
	chip := scc.NewChip(k, 0, scc.DefaultParams())
	places, _ := LinearPlaces([]*scc.Chip{chip}, 2)
	tl := sim.NewTimeline(k)
	s, err := NewSession(k, []*scc.Chip{chip}, places, WithTimeline(tl))
	if err != nil {
		t.Fatal(err)
	}
	err = s.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, make([]byte, 4096))
		} else {
			r.Recv(0, make([]byte, 4096))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var havePut, haveGet bool
	for _, sp := range tl.Spans() {
		if sp.Label == "put" {
			havePut = true
		}
		if sp.Label == "get" {
			haveGet = true
		}
	}
	if !havePut || !haveGet {
		t.Errorf("timeline missing phases: put=%v get=%v", havePut, haveGet)
	}
	// Fig 2a semantics: in the blocking protocol the receiver's get
	// strictly follows the sender's put (no pipelining).
	if tl.Overlap("put", "get") {
		t.Error("blocking protocol should not interleave put and get")
	}
}

// Property: arbitrary message sizes round-trip intact between any two
// ranks of an 8-rank session.
func TestPropertySendRecvIntegrity(t *testing.T) {
	f := func(sz uint16, seed byte, srcSel, destSel uint8) bool {
		size := int(sz)%17000 + 1
		src := int(srcSel) % 8
		dest := int(destSel) % 8
		if src == dest {
			dest = (dest + 1) % 8
		}
		s := newSession(t, 8)
		msg := pattern(size, seed)
		got := make([]byte, size)
		err := s.Run(func(r *Rank) {
			if r.ID() == src {
				r.Send(dest, msg)
			} else if r.ID() == dest {
				r.Recv(src, got)
			}
		})
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: back-to-back messages preserve order and content.
func TestPropertyMessageSequence(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 10 {
			sizes = sizes[:10]
		}
		s := newSession(t, 2)
		ok := true
		err := s.Run(func(r *Rank) {
			for i, szRaw := range sizes {
				size := int(szRaw)%9000 + 1
				if r.ID() == 0 {
					r.Send(1, pattern(size, byte(i)))
				} else {
					got := make([]byte, size)
					r.Recv(0, got)
					if !bytes.Equal(got, pattern(size, byte(i))) {
						ok = false
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
