package rcce

import (
	"testing"

	"vscc/internal/scc"
	"vscc/internal/sim"
)

func TestPowerDomainAndFrequency(t *testing.T) {
	s := newSession(t, 4)
	err := s.Run(func(r *Rank) {
		if r.FrequencyMHz() != 533 {
			t.Errorf("rank %d at %d MHz, want 533", r.ID(), r.FrequencyMHz())
		}
		wantDomain := scc.VoltageIslandOf(scc.CoreTile(r.ID())) // linear mapping: rank = core
		if r.PowerDomain() != wantDomain {
			t.Errorf("rank %d domain %d, want %d", r.ID(), r.PowerDomain(), wantDomain)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetFrequencyDividerSlowsRank(t *testing.T) {
	s := newSession(t, 2)
	var fast, slow sim.Cycles
	err := s.Run(func(r *Rank) {
		if r.ID() == 0 {
			t0 := r.Now()
			r.ComputeFlops(300_000)
			fast = r.Now() - t0
			return
		}
		// Rank 1 shares tile 0 with rank 0 in this session... use a
		// divider its island supports.
		if err := r.SetFrequencyDivider(6); err != nil {
			t.Error(err)
			return
		}
		t0 := r.Now()
		r.ComputeFlops(300_000)
		slow = r.Now() - t0
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ranks 0 and 1 share tile 0 — the divider applies per tile, so rank
	// 0 may also be affected depending on ordering; assert only the
	// slowed rank's cost doubled relative to the nominal rate.
	nominal := sim.Cycles(300_000)
	if fast < nominal {
		t.Errorf("fast compute = %d, below nominal %d", fast, nominal)
	}
	if slow != 2*nominal {
		t.Errorf("divider-6 compute = %d, want %d", slow, 2*nominal)
	}
}

func TestISetPowerRaisesVoltageThenFrequency(t *testing.T) {
	s := newSession(t, 1)
	err := s.Run(func(r *Rank) {
		t0 := r.Now()
		req, err := r.ISetPower(2) // 800 MHz needs 1.1 V: slow transition
		if err != nil {
			t.Error(err)
			return
		}
		// ISetPower returns immediately.
		if r.Now()-t0 > 1000 {
			t.Errorf("ISetPower blocked for %d cycles", r.Now()-t0)
		}
		if err := r.WaitPower(req); err != nil {
			t.Error(err)
			return
		}
		if r.Now()-t0 < scc.VoltageChangeCycles {
			t.Errorf("power change completed in %d cycles, want >= %d", r.Now()-t0, scc.VoltageChangeCycles)
		}
		if r.FrequencyMHz() != 800 {
			t.Errorf("frequency = %d MHz, want 800", r.FrequencyMHz())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetPowerDownAndUp(t *testing.T) {
	s := newSession(t, 1)
	err := s.Run(func(r *Rank) {
		if err := r.SetPower(8); err != nil { // 200 MHz
			t.Error(err)
		}
		if r.FrequencyMHz() != 200 {
			t.Errorf("frequency = %d, want 200", r.FrequencyMHz())
		}
		if err := r.SetPower(3); err != nil { // back to 533: needs 0.9 V again
			t.Error(err)
		}
		if r.FrequencyMHz() != 533 {
			t.Errorf("frequency = %d, want 533", r.FrequencyMHz())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestISetPowerBadDivider(t *testing.T) {
	s := newSession(t, 1)
	err := s.Run(func(r *Rank) {
		if _, err := r.ISetPower(1); err == nil {
			t.Error("divider 1 accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommunicationUnaffectedByPeerFrequency(t *testing.T) {
	// A slowed receiver still receives correct data (the mesh and MPB
	// run on their own clocks); only its compute slows.
	s := newSession(t, 4)
	msg := pattern(4096, 3)
	got := make([]byte, len(msg))
	err := s.Run(func(r *Rank) {
		switch r.ID() {
		case 2: // tile 1: slow it down without affecting rank 0/1 flags
			if err := r.SetPower(8); err != nil {
				t.Error(err)
			}
			r.Barrier()
			r.Recv(0, got)
		case 0:
			r.Barrier()
			r.Send(2, msg)
		default:
			r.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatal("payload corrupted under frequency scaling")
		}
	}
}
