package rcce

import (
	"fmt"

	"vscc/internal/scc"
	"vscc/internal/sim"
)

// RCCE 2.0 power-management API on top of the SCC's frequency and
// voltage islands: a rank can scale its tile's clock (fast) and its
// voltage island's supply (slow, asynchronous), trading performance for
// power exactly as on the research system.

// PowerDomain returns the voltage island the rank's tile belongs to.
func (r *Rank) PowerDomain() int {
	return scc.VoltageIslandOf(scc.CoreTile(r.place(r.id).Core))
}

// FrequencyMHz returns the rank's current tile clock.
func (r *Rank) FrequencyMHz() int {
	return r.s.Chip(r.id).TileFrequencyMHz(scc.CoreTile(r.place(r.id).Core))
}

// SetFrequencyDivider changes the rank's tile clock immediately
// (RCCE_set_frequency_divider). The island voltage must already support
// the target frequency; raise it first with ISetPower otherwise.
func (r *Rank) SetFrequencyDivider(divider int) error {
	return r.s.Chip(r.id).SetTileDivider(scc.CoreTile(r.place(r.id).Core), divider)
}

// PowerRequest is an in-flight asynchronous power change
// (RCCE_iset_power).
type PowerRequest struct {
	done *sim.Gate
	err  error
}

// ISetPower asynchronously moves the rank's tile to the given frequency
// divider, adjusting the island voltage as required: raising the supply
// before a frequency increase, and opportunistically lowering it after a
// decrease if every tile in the island tolerates the lower level. It
// returns immediately; complete with WaitPower.
func (r *Rank) ISetPower(divider int) (*PowerRequest, error) {
	if divider < scc.MinDivider || divider > scc.MaxDivider {
		return nil, fmt.Errorf("rcce: divider %d outside [%d,%d]", divider, scc.MinDivider, scc.MaxDivider)
	}
	chip := r.s.Chip(r.id)
	tile := scc.CoreTile(r.place(r.id).Core)
	island := scc.VoltageIslandOf(tile)
	req := &PowerRequest{done: sim.NewGate(r.s.Kernel, fmt.Sprintf("power.r%d", r.id))}
	r.s.Kernel.Spawn(fmt.Sprintf("powerctl.r%d", r.id), func(p *sim.Proc) {
		defer req.done.Open()
		target := scc.MinVoltageFor(divider)
		if target > chip.IslandVoltage(island) {
			if err := chip.SetIslandVoltage(p, island, target); err != nil {
				req.err = err
				return
			}
		}
		if err := chip.SetTileDivider(tile, divider); err != nil {
			req.err = err
			return
		}
		if target < chip.IslandVoltage(island) {
			// Best effort: other tiles in the island may still need the
			// higher supply.
			_ = chip.SetIslandVoltage(p, island, target)
		}
	})
	return req, nil
}

// WaitPower blocks until an asynchronous power change completes
// (RCCE_wait_power) and returns its outcome.
func (r *Rank) WaitPower(req *PowerRequest) error {
	req.done.Wait(r.ctx.Proc)
	return req.err
}

// SetPower is the blocking convenience: ISetPower followed by WaitPower.
func (r *Rank) SetPower(divider int) error {
	req, err := r.ISetPower(divider)
	if err != nil {
		return err
	}
	return r.WaitPower(req)
}
