package rcce

import (
	"fmt"
	"sort"
)

// Comm is a communicator: an ordered subset of the session's ranks with
// its own rank numbering, as created by RCCE_comm_split. Collectives on
// a communicator involve only its members; the flag traffic is
// addressed by global ranks, so communicators need no extra MPB space.
type Comm struct {
	s *Session
	// members maps communicator rank -> global rank.
	members []int
	// index maps global rank -> communicator rank.
	index map[int]int
}

// CommWorld returns the communicator containing every session rank, in
// rank order (RCCE_COMM_WORLD).
func (r *Rank) CommWorld() *Comm {
	members := make([]int, r.s.NumRanks())
	for i := range members {
		members[i] = i
	}
	c, _ := r.newComm(members)
	return c
}

// CommSplit partitions the session like RCCE_comm_split: every rank
// calls it with a color and a key; ranks sharing a color form one
// communicator, ordered by (key, global rank). It is collective — every
// session rank must call it with consistent arguments; consistency of
// the resulting membership is derived deterministically from the
// arguments via the provided function applied to every rank.
//
// Because the simulator runs SPMD programs, the color/key of every rank
// must be computable by every rank: pass the same colorKey function on
// all ranks.
func (r *Rank) CommSplit(colorKey func(globalRank int) (color, key int)) (*Comm, error) {
	myColor, _ := colorKey(r.id)
	type entry struct{ rank, key int }
	var mine []entry
	for g := 0; g < r.s.NumRanks(); g++ {
		c, k := colorKey(g)
		if c == myColor {
			mine = append(mine, entry{rank: g, key: k})
		}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].rank < mine[j].rank
	})
	members := make([]int, len(mine))
	for i, e := range mine {
		members[i] = e.rank
	}
	return r.newComm(members)
}

// newComm builds the communicator handle for this rank.
func (r *Rank) newComm(members []int) (*Comm, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("rcce: empty communicator")
	}
	index := make(map[int]int, len(members))
	for i, g := range members {
		if g < 0 || g >= r.s.NumRanks() {
			return nil, fmt.Errorf("rcce: communicator member %d out of range", g)
		}
		if _, dup := index[g]; dup {
			return nil, fmt.Errorf("rcce: duplicate communicator member %d", g)
		}
		index[g] = i
	}
	if _, ok := index[r.id]; !ok {
		return nil, fmt.Errorf("rcce: rank %d not a member of its own communicator", r.id)
	}
	return &Comm{s: r.s, members: members, index: index}, nil
}

// Size returns the communicator's member count (RCCE_num_ues(comm)).
func (c *Comm) Size() int { return len(c.members) }

// Rank returns the caller's rank within the communicator
// (RCCE_ue(comm)).
func (c *Comm) Rank(r *Rank) int { return c.index[r.id] }

// Global translates a communicator rank to the session rank.
func (c *Comm) Global(commRank int) int { return c.members[commRank] }

// Send transmits to a communicator rank.
func (c *Comm) Send(r *Rank, destCommRank int, data []byte) error {
	return r.Send(c.members[destCommRank], data)
}

// Recv receives from a communicator rank.
func (c *Comm) Recv(r *Rank, srcCommRank int, buf []byte) error {
	return r.Recv(c.members[srcCommRank], buf)
}

// Barrier synchronizes the communicator's members: a message-based
// gather to the communicator's first member followed by a release. It
// shares no flag slots with the session barrier or other communicators,
// so barriers of overlapping communicators may be freely sequenced.
func (c *Comm) Barrier(r *Rank) {
	if len(c.members) == 1 {
		return
	}
	token := []byte{1}
	buf := make([]byte, 1)
	if c.Rank(r) == 0 {
		for cr := 1; cr < c.Size(); cr++ {
			if err := c.Recv(r, cr, buf); err != nil {
				panic(err)
			}
		}
		for cr := 1; cr < c.Size(); cr++ {
			if err := c.Send(r, cr, token); err != nil {
				panic(err)
			}
		}
		return
	}
	if err := c.Send(r, 0, token); err != nil {
		panic(err)
	}
	if err := c.Recv(r, 0, buf); err != nil {
		panic(err)
	}
}

// Bcast broadcasts data from the communicator rank root to all members.
func (c *Comm) Bcast(r *Rank, root int, data []byte) error {
	if c.Size() == 1 {
		return nil
	}
	if c.Rank(r) == root {
		for cr := 0; cr < c.Size(); cr++ {
			if cr == root {
				continue
			}
			if err := c.Send(r, cr, data); err != nil {
				return err
			}
		}
		return nil
	}
	return c.Recv(r, root, data)
}

// Allreduce combines vec across the communicator with op.
func (c *Comm) Allreduce(r *Rank, op ReduceOp, vec []float64) error {
	root := 0
	buf := make([]byte, 8*len(vec))
	if c.Rank(r) == root {
		tmp := make([]float64, len(vec))
		for cr := 1; cr < c.Size(); cr++ {
			if err := c.Recv(r, cr, buf); err != nil {
				return err
			}
			decodeFloats(buf, tmp)
			for i := range vec {
				vec[i] = op.apply(vec[i], tmp[i])
			}
			r.ComputeFlops(float64(len(vec)))
		}
	} else {
		encodeFloats(vec, buf)
		if err := c.Send(r, root, buf); err != nil {
			return err
		}
	}
	if c.Rank(r) == root {
		encodeFloats(vec, buf)
	}
	if err := c.Bcast(r, root, buf); err != nil {
		return err
	}
	decodeFloats(buf, vec)
	return nil
}
