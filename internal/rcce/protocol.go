package rcce

// Protocol is the wire protocol behind Send/Recv. The default is RCCE's
// blocking local-put/remote-get scheme; iRCCE substitutes a pipelined
// variant and the vSCC runtime extension substitutes host-accelerated
// schemes for inter-device rank pairs.
type Protocol interface {
	// Name identifies the protocol in reports and benchmarks.
	Name() string
	// Send transmits data from r to rank dest; blocks until the receiver
	// has drained the message.
	Send(r *Rank, dest int, data []byte)
	// Recv fills buf with a message from rank src; blocks until complete.
	Recv(r *Rank, src int, buf []byte)
}

// DefaultProtocol is RCCE's blocking protocol (paper Fig. 2a):
//
//  1. the sender puts the message into its local communication buffer,
//  2. the sender toggles a flag at the receiver's side,
//  3. the receiver copies the message into private memory (remote get)
//     and acknowledges, which releases the sender.
//
// Messages that do not fit into the MPB are split into chunks and
// transferred consecutively; each core exclusively writes its local
// buffer, which keeps the synchronization model simple (paper §2.2).
type DefaultProtocol struct{}

// Name implements Protocol.
func (DefaultProtocol) Name() string { return "rcce-localput-remoteget" }

// ChunkBytes is the per-chunk payload: the whole MPB payload area.
const ChunkBytes = PayloadBytes

// Send implements Protocol.
func (DefaultProtocol) Send(r *Rank, dest int, data []byte) {
	tl := r.s.timeline
	myDev, myTile, myBase := r.mpb(r.id)
	for len(data) > 0 {
		n := len(data)
		if n > ChunkBytes {
			n = ChunkBytes
		}
		// Local put: private memory -> own MPB.
		t0 := r.Now()
		r.ctx.CopyPrivate(n)
		r.ctx.WriteMPB(myDev, myTile, myBase, data[:n])
		r.ctx.FlushWCB()
		tl.Record("sender", "put", t0, r.Now())
		// Signal chunk availability at the receiver.
		r.setSent(dest, 1)
		// Wait for the receiver's drain acknowledgement.
		t0 = r.Now()
		r.waitReady(dest)
		tl.Record("sender", "waitack", t0, r.Now())
		data = data[n:]
	}
}

// Recv implements Protocol.
func (DefaultProtocol) Recv(r *Rank, src int, buf []byte) {
	tl := r.s.timeline
	srcDev, srcTile, srcBase := r.mpb(src)
	for len(buf) > 0 {
		n := len(buf)
		if n > ChunkBytes {
			n = ChunkBytes
		}
		// Wait for the sender's flag.
		t0 := r.Now()
		r.waitSent(src)
		tl.Record("receiver", "waitdata", t0, r.Now())
		// Remote get: sender's MPB -> private memory.
		t0 = r.Now()
		r.ctx.InvalidateMPB()
		r.ctx.ReadMPB(srcDev, srcTile, srcBase, buf[:n])
		r.ctx.CopyPrivate(n)
		tl.Record("receiver", "get", t0, r.Now())
		// Release the sender's buffer.
		r.setReady(src, 1)
		buf = buf[n:]
	}
}
