// Fixture for the simapi rule: scheduling durations must not be computed
// by a subtraction that can go negative (sim.Cycles is unsigned and
// wraps). The stubs mirror the sim.Proc / sim.Kernel scheduling names.
package simapi

type cycles uint64

type proc struct{}

func (proc) Delay(d cycles) {}
func (proc) Now() cycles    { return 0 }

type kernel struct{}

func (kernel) After(d cycles, fn func()) {}
func (kernel) At(t cycles, fn func())    {}
func (kernel) RunFor(d cycles) error     { return nil }

func unclamped(p proc, k kernel, deadline, now cycles) {
	p.Delay(deadline - now)          // want "Delay duration computed by subtraction"
	k.After(deadline-now, func() {}) // want "After duration computed by subtraction"
	_ = k.RunFor(deadline - now)     // want "RunFor duration computed by subtraction"
	p.Delay(deadline - p.Now())      // want "Delay duration computed by subtraction"
}

func clamped(p proc, deadline, now cycles) {
	if deadline > now {
		p.Delay(deadline - now) // ok: the guard orders the operands
	}
	if now < deadline {
		p.Delay(deadline - now) // ok: either operand order matches
	}
	if deadline != now && deadline > now {
		p.Delay(deadline - now) // ok: guard found through &&
	}
}

func wrongGuard(p proc, deadline, now, other cycles) {
	if deadline > other {
		p.Delay(deadline - now) // want "Delay duration computed by subtraction"
	}
}

func absoluteDeadline(k kernel, t cycles) {
	k.At(t-1, func() {}) // ok: At takes an absolute time, not a difference
}

func additionsAreFine(p proc, base, cost cycles) {
	p.Delay(base + cost) // ok: no subtraction
}

func suppressedSite(p proc, deadline, now cycles) {
	//lint:ignore simapi deadline was computed as now+cost above
	p.Delay(deadline - now)
}
