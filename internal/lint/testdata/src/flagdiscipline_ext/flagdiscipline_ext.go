// Fixture for the flagdiscipline rule inside a protocol-extension
// package (the harness loads it under an internal/ircce import path):
// raw addressing is legal there, but the kind must be a named constant.
package flagdiscipline_ext

type rank struct{}

func (rank) FlagByteAt(kind, peer int) int    { return 0 }
func (rank) PeekFlagByte(kind, peer int) byte { return 0 }

const flagReady = 1

func extension(r rank) {
	_ = r.FlagByteAt(flagReady, 1)   // ok: named kind inside an extension
	_ = r.PeekFlagByte(flagReady, 1) // ok: raw peeks are the extension's business
	_ = r.FlagByteAt(1, 1)           // want "numeric flag kind 1 in FlagByteAt"
	_ = r.PeekFlagByte(1, 1)         // want "numeric flag kind 1 in PeekFlagByte"
}
