// Fixture for the kernelclock rule in its engine mode (internal/sim):
// the PDES workers' real concurrency is the sanctioned channel, so
// sync, channels, goroutines and select pass — but the wall clock and
// process-global randomness stay banned even here, so sub-kernel code
// cannot smuggle real time in through the engine.
package kernelclock_engine

import (
	"math/rand" // want "import of math/rand"
	"sync"
	"time" // want "import of time in the simulation engine"
)

var mu sync.Mutex // ok: worker coordination is sanctioned in the engine

func workers() {
	done := make(chan int) // ok: engine handoff channel
	go func() {            // ok: PDES worker goroutine
		mu.Lock()
		defer mu.Unlock()
		done <- 1 // ok
	}()
	select { // ok: engine may multiplex worker channels
	case v := <-done:
		_ = v
	}
}

func wallClock() {
	_ = time.Now()     // want "time.Now"
	time.Sleep(1)      // want "time.Sleep"
	_ = rand.Intn(100) // ok: the import line already carries the finding
}
