// Test files are exempt from kernelclock: tests may drive the simulator
// with wall-clock timeouts and goroutines.
package kernelclock

import "time"

func driveFromOutside() {
	_ = time.Now() // ok: _test.go files are exempt
	go wallClock() // ok: likewise
}
