// Fixture for the kernelclock rule in its strict mode: wall-clock
// time, the time import itself, process-global randomness and raw Go
// concurrency are forbidden in model packages.
package kernelclock

import (
	"math/rand" // want "import of math/rand"
	"sync"      // want "import of sync in a model package"
	"time"      // want "import of time in a model package"
)

var mu sync.Mutex

func wallClock() {
	_ = time.Now()     // want "time.Now"
	time.Sleep(1)      // want "time.Sleep"
	_ = time.After(1)  // want "time.After"
	_ = rand.Intn(100) // ok: the import line already carries the finding
	mu.Lock()          // ok: likewise
}

func concurrency() {
	go wallClock()       // want "raw goroutine in a model package"
	ch := make(chan int) // want "channel type in a model package"
	ch <- 1              // want "channel send in a model package"
	v := <-ch            // want "channel receive in a model package"
	_ = v
	select {} // want "select statement in a model package"
}

func suppressedClock() {
	//lint:ignore kernelclock fixture proves same-line-above suppression
	_ = time.Now()
	_ = time.Now() //lint:ignore kernelclock fixture proves same-line suppression
}

// Durations as plain data would be deterministic, but the rule bans the
// listed selectors wholesale; Unix conversion helpers are untouched.
func allowedSelectors(t time.Time) int64 {
	return t.Unix() // ok: not a wall-clock entry point
}
