// Fixture for the goryorder rule: gory-protocol call sites must flush
// the write-combine buffer before signalling and invalidate the L1 after
// waiting on a flag. The stub types mirror the scc/rcce method names the
// analyzer matches on.
package goryorder

type ctx struct{}

func (ctx) WriteMPB(dev, tile, off int, b []byte) {}
func (ctx) ReadMPB(dev, tile, off, n int) []byte  { return nil }
func (ctx) FlushWCB()                             {}
func (ctx) InvalidateMPB()                        {}

type rank struct{ c ctx }

func (rank) SignalSent(peer int)    {}
func (rank) SignalReady(peer int)   {}
func (rank) AwaitSent(peer int)     {}
func (rank) ClearSent(peer int)     {}
func (rank) PeekSent(peer int) bool { return false }

// FlagByteAt mirrors the rcce raw flag-address helper.
func FlagByteAt(kind, peer int) int { return 0 }

var buf = []byte{1}

func goodSend(c ctx, r rank) {
	c.WriteMPB(0, 0, 0, buf)
	c.FlushWCB()
	r.SignalSent(1)
}

func badSend(c ctx, r rank) {
	c.WriteMPB(0, 0, 0, buf)
	r.SignalSent(1) // want "SignalSent before FlushWCB of the preceding MPB data write"
}

func goodRecv(c ctx, r rank) {
	r.AwaitSent(0)
	c.InvalidateMPB()
	_ = c.ReadMPB(0, 0, 0, 32)
}

func badRecv(c ctx, r rank) {
	r.AwaitSent(0)
	_ = c.ReadMPB(0, 0, 0, 32) // want "MPB read after a flag wait without InvalidateMPB"
}

// Peek-based polling consumes flag state exactly like a wait does: the
// read after it still needs the invalidate.
func badPeekRecv(c ctx, r rank) {
	for !r.PeekSent(0) {
	}
	r.ClearSent(0)
	_ = c.ReadMPB(0, 0, 0, 32) // want "MPB read after a flag wait without InvalidateMPB"
}

// A raw flag-byte store is a signal; unflushed data must not precede it,
// even when the flag offset was hoisted into a local.
func badHoistedFlagWrite(c ctx) {
	sentOff := FlagByteAt(0, 1)
	c.WriteMPB(0, 0, 0, buf)
	c.WriteMPB(0, 1, sentOff, buf) // want "flag byte written before FlushWCB of the preceding MPB data write"
}

func goodFlagWrite(c ctx) {
	c.WriteMPB(0, 0, 0, buf)
	c.FlushWCB()
	c.WriteMPB(0, 1, FlagByteAt(0, 1), buf) // ok: data flushed first
}

func suppressedRecv(c ctx, r rank) {
	r.AwaitSent(0)
	//lint:ignore goryorder peer writes through an uncached alias in this fixture
	_ = c.ReadMPB(0, 0, 0, 32)
}
