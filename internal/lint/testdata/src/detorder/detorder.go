// Fixture for the detorder rule: map iteration whose randomized order
// can pick a winner (early exit) or reach kernel-clock-visible state
// (directly or through the call graph) is a finding; the collect-sort-
// range idiom and pure-accumulation bodies stay clean.
package detorder

type kernel struct{}

func (kernel) Post(ev int)  {}
func (kernel) Now() uint64  { return 0 }
func (kernel) Lookup(k int) {}
func (q *queue) Push(v int) {}
func (q *queue) Len() int   { return 0 }

type queue struct{}

// emit reaches a kernel-visible effect one hop away: the call graph must
// carry Push through it.
func emit(q *queue, v int) {
	q.Push(v)
}

// tally is pure accumulation — no effect, no exit.
func tally(acc *int, v int) {
	*acc += v
}

func earlyExitPick(m map[int]int, lim int) int {
	for k, v := range m { // want "map iteration with an early exit"
		if v >= lim {
			return k
		}
	}
	return -1
}

func directEffect(k kernel, m map[int]int) {
	for _, v := range m { // want "map iteration body performs event posting via Post"
		k.Post(v)
	}
}

func transitiveEffect(q *queue, m map[int]int) {
	for _, v := range m { // want "map iteration body reaches Push .queue push. through noc.emit"
		emit(q, v)
	}
}

func cleanCollectSort(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m { // clean: body only appends to a local
		keys = append(keys, k)
	}
	// (sorting and the effectful loop over the slice happen here)
	return keys
}

func cleanAccumulate(m map[int]int) int {
	var sum int
	for _, v := range m { // clean: transitive callee is pure
		tally(&sum, v)
	}
	return sum
}

func cleanDeleteOnly(m map[int]int) {
	for k, v := range m { // clean: delete is a builtin, not an effect
		if v == 0 {
			delete(m, k)
		}
	}
}

func provenInsensitive(k kernel, m map[int]int) {
	//lint:ignore detorder proof: the posted events carry the key and are re-sorted by the kernel before dispatch
	for key := range m {
		k.Post(key)
	}
}
