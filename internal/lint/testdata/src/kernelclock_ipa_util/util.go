// Helper-package fixture loaded as a dependency of kernelclock_ipa: it
// sits outside the audited model/engine set, so its own wall-clock and
// concurrency uses are not findings here — they become findings at the
// model-package call sites that reach them.
package util

import "time"

// SlowStamp reads the wall clock directly.
func SlowStamp() int64 { return time.Now().UnixNano() }

// stampIndirect hides the clock behind one more hop.
func stampIndirect() int64 { return SlowStamp() }

// Stamp2 is the exported entry of the two-hop chain.
func Stamp2() int64 { return stampIndirect() }

// FanOut spawns a raw goroutine.
func FanOut(f func()) { go f() }

// Pure is effect-free.
func Pure(a, b int) int { return a + b }
