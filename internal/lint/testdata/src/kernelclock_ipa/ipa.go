// Fixture for the transitive kernelclock extension: calls from a model
// package into helper code that reaches the wall clock or raw
// concurrency — however many hops away — are reported at the model-side
// call site with the offending chain; effect-free helpers stay clean.
package noc

import "vscc/internal/util"

func badStamp() int64 {
	return util.SlowStamp() // want "call reaches time.Now: util.SlowStamp"
}

func badStampDeep() int64 {
	return util.Stamp2() // want "call reaches time.Now: util.Stamp2 → util.stampIndirect → util.SlowStamp"
}

func badFanOut() {
	util.FanOut(func() {}) // want "call reaches raw concurrency .goroutine. outside the engine: util.FanOut"
}

func cleanHelper() int {
	return util.Pure(1, 2)
}

func provenBenign() int64 {
	//lint:ignore kernelclock proof: only reachable from the offline report generator, never inside a sweep
	return util.SlowStamp()
}
