// Fixture for the tracealloc rule: no dynamic span/counter name building
// at unguarded trace.Sink call sites. The stub sink mirrors the recording
// method names the analyzer matches on.
package tracealloc

import "fmt"

type span int

type sink struct{}

func (s *sink) Enabled() bool                       { return s != nil }
func (s *sink) Span(tr span, name string, a, b int) {}
func (s *sink) Instant(tr span, name string)        {}
func (s *sink) Add(name string, v int)              {}

func itoa(v int) string { return fmt.Sprint(v) }

func unguarded(s *sink, tr span, id int) {
	s.Span(tr, fmt.Sprintf("xfer-%d", id), 0, 1) // want "builds a trace label with fmt.Sprintf at an unguarded call site"
	s.Add("lane-"+itoa(id), 1)                   // want "builds a trace label with string concatenation at an unguarded call site"
}

func constantNames(s *sink, tr span, id int) {
	s.Add("fixed-name", 1)     // ok: constant name
	s.Instant(tr, "pre"+"fix") // ok: constant-folded concatenation
	s.Add("bytes", id+id)      // ok: numeric + is not a string build
}

func guardedBlock(s *sink, tr span, id int) {
	if s.Enabled() {
		s.Span(tr, fmt.Sprintf("xfer-%d", id), 0, 1) // ok: inside an Enabled guard
	}
}

func guardedEarlyReturn(s *sink, tr span, id int) {
	if !s.Enabled() {
		return
	}
	s.Span(tr, fmt.Sprintf("xfer-%d", id), 0, 1) // ok: the disabled path returned above
}

func nilGuard(s *sink, id int) {
	if s == nil {
		return
	}
	s.Add("lane-"+itoa(id), 1) // ok: nil receiver excluded above
}

func guardDoesNotLeak(s *sink, tr span, id int) {
	if s.Enabled() {
		s.Add("count", 1)
	}
	s.Instant(tr, fmt.Sprintf("late-%d", id)) // want "builds a trace label with fmt.Sprintf at an unguarded call site"
}

func suppressed(s *sink, id int) {
	//lint:ignore tracealloc fixture proves suppression; cold path
	s.Add("lane-"+itoa(id), 1)
}
