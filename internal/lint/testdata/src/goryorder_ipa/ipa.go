// Fixture for the interprocedural goryorder extension: helper functions
// carry gory-effect summaries (ordered write/flush/signal/wait/
// invalidate/read sequences), and the §3.1 state machine runs across
// call boundaries. A violation is reported at the boundary only when the
// state-setter and the violator come from different call sites — a
// violation wholly inside one callee is that callee's own finding.
package vscc

type ctx struct{}

func (ctx) WriteMPB(dev, tile, off int, b []byte) {}
func (ctx) ReadMPB(dev, tile, off, n int) []byte  { return nil }
func (ctx) FlushWCB()                             {}
func (ctx) InvalidateMPB()                        {}

type rank struct{}

func (rank) SignalSent(peer int) {}
func (rank) AwaitSent(peer int)  {}

var buf = []byte{1}

// stage leaves an unflushed MPB write behind for the caller.
func stage(c ctx) {
	c.WriteMPB(0, 0, 0, buf)
}

// notify signals; whether that is safe depends on the caller's state.
func notify(r rank) {
	r.SignalSent(1)
}

// consume reads the MPB; safety depends on the caller's invalidate.
func consume(c ctx) []byte {
	return c.ReadMPB(0, 0, 0, 32)
}

// await waits on the sent flag without invalidating.
func await(r rank) {
	r.AwaitSent(0)
}

// getLike invalidates internally before reading, like scc.Ctx.Get.
func getLike(c ctx) []byte {
	c.InvalidateMPB()
	return c.ReadMPB(0, 0, 0, 32)
}

func badCallerSignals(c ctx, r rank) {
	stage(c)
	r.SignalSent(1) // want "SignalSent before FlushWCB of the preceding MPB data write .WriteMPB via vscc.stage."
}

func badCalleeSignals(c ctx, r rank) {
	c.WriteMPB(0, 0, 0, buf)
	notify(r) // want "SignalSent via vscc.notify before FlushWCB of the preceding MPB data write .WriteMPB."
}

func badCalleeReads(c ctx, r rank) {
	r.AwaitSent(0)
	_ = consume(c) // want "MPB read .ReadMPB via vscc.consume. after a flag wait .AwaitSent."
}

func badCallerReads(c ctx, r rank) {
	await(r)
	_ = c.ReadMPB(0, 0, 0, 32) // want "MPB read .ReadMPB. after a flag wait .AwaitSent via vscc.await."
}

func goodFlushBetween(c ctx, r rank) {
	stage(c)
	c.FlushWCB()
	r.SignalSent(1)
}

func goodGetLike(c ctx, r rank) {
	r.AwaitSent(0)
	_ = getLike(c)
}

// badInside violates §3.1 wholly inside one function: the finding lands
// here, at the definition, and its caller below stays clean.
func badInside(c ctx, r rank) {
	c.WriteMPB(0, 0, 0, buf)
	r.SignalSent(1) // want "SignalSent before FlushWCB of the preceding MPB data write"
}

func cleanCallerOfBadInside(c ctx, r rank) {
	badInside(c, r)
}

func provenSafe(c ctx, r rank) {
	stage(c)
	//lint:ignore goryorder proof: stage targets the scratch line, which the peer re-reads coherently
	r.SignalSent(1)
}
