// Fixture for the flagdiscipline rule outside the protocol-extension
// packages: every raw flag-byte access is a finding, and a numeric kind
// argument adds a second one.
package flagdiscipline

import (
	"example.test/notrcce"
	"vscc/internal/rcce"
)

type rank struct{}

func (rank) FlagByteAt(kind, peer int) int    { return 0 }
func (rank) PeekFlagByte(kind, peer int) byte { return 0 }
func (rank) ScratchByteAt(i int) int          { return 0 }

const flagSent = 0

func misuse(r rank) {
	_ = r.FlagByteAt(0, 1)          // want "raw flag-byte addressing .FlagByteAt. outside a protocol extension" "numeric flag kind 0 in FlagByteAt"
	_ = r.PeekFlagByte(flagSent, 1) // want "raw flag-byte addressing .PeekFlagByte. outside a protocol extension"
	_ = r.ScratchByteAt(3)          // want "raw flag-byte addressing .ScratchByteAt. outside a protocol extension"
}

func namedKindStillOutside(r rank) {
	_ = r.FlagByteAt(flagSent, 1) // want "raw flag-byte addressing .FlagByteAt. outside a protocol extension"
}

func qualified() {
	_ = rcce.FlagByteAt(1, 2)    // want "raw flag-byte addressing .FlagByteAt. outside a protocol extension" "numeric flag kind 1 in FlagByteAt"
	_ = notrcce.FlagByteAt(0, 1) // ok: same-named function from an unrelated package
}

func suppressed(r rank) {
	//lint:ignore flagdiscipline fixture proves targeted suppression
	_ = r.PeekFlagByte(flagSent, 1)
}
