// Fixture for the faultorder rule: inter-device protocol waits must use
// the budget-carrying *For primitives. The stubs mirror the scc.Ctx and
// rcce.Rank method names the analyzer matches on.
package faultorder

type ctx struct{}

func (ctx) WaitFlag(tile, off int, pred func(byte) bool)                           {}
func (ctx) WaitFlagFor(tile, off int, pred func(byte) bool, b uint64) (byte, bool) { return 0, true }
func (ctx) WaitLMBChange(tile int)                                                 {}
func (ctx) WaitLMBChangeFor(tile int, b uint64) bool                               { return true }

type rank struct{ c ctx }

func (rank) AwaitSent(peer int)                    {}
func (rank) AwaitSentFor(peer int, b uint64) bool  { return true }
func (rank) AwaitReady(peer int)                   {}
func (rank) AwaitReadyFor(peer int, b uint64) bool { return true }
func (rank) WaitAnyLocalChange()                   {}
func (rank) WaitAnyLocalChangeFor(b uint64) bool   { return true }

func goodWaits(c ctx, r rank) {
	_, _ = c.WaitFlagFor(0, 0, func(b byte) bool { return b == 1 }, 0)
	_ = c.WaitLMBChangeFor(0, 1000)
	_ = r.AwaitSentFor(0, 0)
	_ = r.AwaitReadyFor(0, 0)
	_ = r.WaitAnyLocalChangeFor(0)
}

func badWaits(c ctx, r rank) {
	c.WaitFlag(0, 0, func(b byte) bool { return b == 1 }) // want "un-budgeted engaged wait WaitFlag"
	c.WaitLMBChange(0)                                    // want "un-budgeted engaged wait WaitLMBChange"
	r.AwaitSent(0)                                        // want "un-budgeted engaged wait AwaitSent"
	r.AwaitReady(0)                                       // want "un-budgeted engaged wait AwaitReady"
	r.WaitAnyLocalChange()                                // want "un-budgeted engaged wait WaitAnyLocalChange"
}

func suppressedWait(r rank) {
	//lint:ignore faultorder on-chip barrier flag; same-device writes cannot be lost
	r.AwaitSent(0)
}
