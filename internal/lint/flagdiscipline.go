package lint

import (
	"go/ast"
	"strings"
)

// FlagDisciplineAnalyzer polices raw flag-byte addressing. The MPB flag
// arrays (sent/ready/grant/vDMA-completion, rank.go) are RCCE-internal
// layout: FlagByteAt/PeekFlagByte/ScratchByteAt exist only so that the
// protocol extensions (internal/ircce, internal/vscc) can build their
// value-encoded counter protocols on top. Everywhere else — model code,
// harness, commands, tests — flag traffic must go through the
// SignalSent/SignalReady/Await*/Peek*/Clear* hooks, which charge the
// right costs and keep the flag-vs-data traffic split honest.
//
// Inside the allowed packages, the kind argument must still be one of
// the named rcce.Flag* constants: a bare numeric kind silently breaks
// when the flag-area layout changes.
func FlagDisciplineAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "flagdiscipline",
		Doc:  "raw flag-byte addressing is reserved for protocol extensions and needs named kinds",
		Run:  runFlagDiscipline,
	}
}

// flagAddrFuncs maps raw-addressing helpers to whether their first
// argument is a flag kind.
var flagAddrFuncs = map[string]bool{
	"FlagByteAt":    true,
	"PeekFlagByte":  true,
	"ScratchByteAt": false,
}

func runFlagDiscipline(pass *Pass) {
	allowed := pkgPathIn(pass.Pkg.Path, goryPackages...)
	for _, f := range pass.Files {
		imports := importTable(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			hasKind, isFlagFn := flagAddrFuncs[name]
			if !isFlagFn || !isRCCEFlagCall(call, imports) {
				return true
			}
			if !allowed {
				pass.Reportf(call.Pos(), "raw flag-byte addressing (%s) outside a protocol extension: use the rcce hooks (SignalSent/SignalReady/Await*/Peek*/Clear*) instead", name)
			}
			if hasKind && len(call.Args) > 0 {
				if lit, ok := call.Args[0].(*ast.BasicLit); ok {
					pass.Reportf(call.Args[0].Pos(), "numeric flag kind %s in %s: use the named rcce.Flag* constants (FlagSent/FlagReady/FlagGrant/FlagDMAC)", lit.Value, name)
				}
			}
			return true
		})
	}
}

// isRCCEFlagCall filters out same-named functions from other packages:
// a package-qualified call counts only when the qualifier imports
// internal/rcce; bare calls (rcce-internal or fixture-local) and method
// calls on a value (r.PeekFlagByte) always count.
func isRCCEFlagCall(call *ast.CallExpr, imports map[string]string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return true
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return true
	}
	if path, isImport := imports[id.Name]; isImport {
		return hasSuffixPath(path, "internal/rcce") || strings.HasSuffix(path, "/rcce") || path == "rcce"
	}
	return true
}
