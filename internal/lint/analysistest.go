// analysistest.go is the golden-test harness for the analyzers, modeled
// on golang.org/x/tools' analysistest but stdlib-only. A fixture package
// under testdata/src/<rule>/ annotates the lines it expects diagnostics
// on with trailing comments of the form
//
//	call() // want "regexp1" "regexp2"
//
// Each quoted regexp must match the message of exactly one diagnostic
// reported on that line; unmatched expectations and unexpected
// diagnostics both fail the test. Fixture packages are ignored by the go
// tool (testdata/), so they may reference stub types freely.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// FixtureDep names a dependency package of a multi-package fixture: its
// testdata directory and the import path it is loaded under. Deps are
// loaded (and type-checked) before the fixture, so qualified calls into
// them resolve through the call graph, but they are not analyzed — only
// the fixture package's // want annotations are diffed.
type FixtureDep struct {
	Dir        string
	ImportPath string
}

// RunAnalyzerTest loads dir as a fixture package under importPath (the
// path chooses which Applies filters see it), after loading any deps,
// and diffs the analyzer's diagnostics against the fixture's // want
// annotations.
func RunAnalyzerTest(t *testing.T, a *Analyzer, dir, importPath string, deps ...FixtureDep) {
	t.Helper()
	pr := NewProgram()
	for _, dep := range deps {
		if _, err := pr.LoadDir(dep.Dir, dep.ImportPath); err != nil {
			t.Fatalf("loading fixture dep %s: %v", dep.Dir, err)
		}
	}
	pkg, err := pr.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if a.Applies != nil && !a.Applies(importPath) {
		t.Fatalf("fixture import path %q is filtered out by %s.Applies", importPath, a.Name)
	}
	diags := RunPackage(pr, pkg, []*Analyzer{a})

	wants := collectWants(t, pr.Fset, pkg)
	for _, d := range diags {
		if !wants.match(d) {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
	}
}

// NewProgram returns an empty Program for loading fixture packages with
// LoadDir, outside any module walk.
func NewProgram() *Program {
	return &Program{
		Fset:     token.NewFileSet(),
		pkgs:     map[string]*Package{},
		stubs:    map[string]*types.Package{},
		checking: map[string]bool{},
	}
}

// want is one expectation: a regexp on a specific file line.
type want struct {
	file    string
	line    int
	re      string
	rx      *regexp.Regexp
	matched bool
}

type wantSet struct{ wants []*want }

// wantRE extracts the quoted regexps of a // want comment.
var wantRE = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)\s*$`)

var wantArgRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func collectWants(t *testing.T, fset *token.FileSet, pkg *Package) *wantSet {
	t.Helper()
	ws := &wantSet{}
	for _, f := range pkg.AllFiles() {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "want \"") {
						t.Fatalf("%s: malformed want comment: %s", fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantArgRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					ws.wants = append(ws.wants, &want{file: pos.Filename, line: pos.Line, re: pat, rx: rx})
				}
			}
		}
	}
	return ws
}

// match consumes the first unmatched expectation covering the diagnostic.
func (ws *wantSet) match(d Diagnostic) bool {
	for _, w := range ws.wants {
		if w.matched || w.file != d.Position.Filename || w.line != d.Position.Line {
			continue
		}
		if w.rx.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range ws.wants {
		if !w.matched {
			out = append(out, w)
		}
	}
	return out
}

// ParseFixtureFile parses source text as a one-file fixture package
// inside pr under importPath — for unit tests that do not need a
// testdata directory.
func (pr *Program) ParseFixtureFile(filename, src, importPath string) (*Package, error) {
	f, err := parser.ParseFile(pr.Fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	pkg := &Package{Path: importPath, Dir: "."}
	if strings.HasSuffix(filename, "_test.go") {
		pkg.TestFiles = []*ast.File{f}
	} else {
		pkg.Files = []*ast.File{f}
	}
	pr.pkgs[importPath] = pkg
	pr.ensureChecked(pkg)
	pr.cg = nil
	return pkg, nil
}
