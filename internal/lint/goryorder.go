package lint

import (
	"go/ast"
	"strings"
)

// GoryOrderAnalyzer checks the gory-protocol ordering discipline of the
// SCC's non-coherent memory model (paper §3.1, RCCE's "gory" interface):
//
//   - flush-before-flag: after an MPB data write (WriteMPB/WriteV), the
//     write-combine buffer must be flushed (FlushWCB) before any flag is
//     signalled (SignalSent/SignalReady/setSent/setReady/FlagSet, or a
//     raw WriteMPB of a flag byte). A flag that overtakes combined data
//     publishes a message the receiver cannot yet see.
//   - invalidate-before-read: after waiting on (or consuming) a flag,
//     an MPB data read (ReadMPB/ReadV) must be preceded by
//     InvalidateMPB, or the L1 may serve stale MPBT lines cached before
//     the peer's write.
//
// The check is a linear, path-insensitive scan over each function body:
// events are matched by callee name in syntactic order, so straight-line
// protocol code — the shape of every gory call site in this repository —
// is checked exactly, while branchy code may need a //lint:ignore with a
// short proof. The runtime MPB consistency checker (scc.Checker, enabled
// with -check) covers the path-sensitive remainder.
func GoryOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goryorder",
		Doc:  "gory-protocol call sites must flush before signalling and invalidate after waiting",
		Applies: func(p string) bool {
			return pkgPathIn(p, goryPackages...) || !strings.Contains(p, "/")
		},
		Run: runGoryOrder,
	}
}

// Event classes, matched by callee name.
var (
	goryFlush = map[string]bool{
		"FlushWCB": true,
		// Put/PutV flush the WCB internally before returning (rank.go,
		// gory.go), so at the call site they leave no combined data behind
		// — including any earlier unflushed WriteMPB.
		"Put": true, "PutV": true,
	}
	goryInval = map[string]bool{
		"InvalidateMPB": true,
		// Get/GetV invalidate internally before reading, so at the call
		// site they behave like an invalidate (the L1 holds only fresh
		// lines afterwards).
		"Get": true, "GetV": true,
	}
	goryDataWrite = map[string]bool{"WriteMPB": true, "WriteV": true}
	goryDataRead  = map[string]bool{"ReadMPB": true, "ReadV": true}
	gorySignal    = map[string]bool{
		"SignalSent": true, "SignalReady": true,
		"setSent": true, "setReady": true, "FlagSet": true,
	}
	goryWait = map[string]bool{
		"AwaitSent": true, "AwaitReady": true,
		"waitSent": true, "waitReady": true, "waitClearFlag": true,
		"WaitFlag": true, "FlagWait": true,
		"ClearSent": true, "ClearReady": true,
		"PeekSent": true, "PeekReady": true, "PeekFlagByte": true,
	}
)

func runGoryOrder(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoryFunc(pass, fd)
		}
	}
}

// checkGoryFunc runs the order state machine over one function body.
func checkGoryFunc(pass *Pass, fd *ast.FuncDecl) {
	flagOffIdents := collectFlagOffsetIdents(fd)

	dirtyData := false // an MPB data write is sitting unflushed in the WCB
	needInval := false // a flag wait happened with no InvalidateMPB since
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		switch {
		case goryFlush[name]:
			dirtyData = false
		case goryInval[name]:
			needInval = false
		case goryDataWrite[name]:
			if isFlagWrite(call, flagOffIdents) {
				// A raw flag-byte store is a signal: combined data must
				// already be flushed.
				if dirtyData {
					pass.Reportf(call.Pos(), "flag byte written before FlushWCB of the preceding MPB data write (paper §3.1: flush write-combined data before signalling)")
				}
				// The flag byte itself now sits in the WCB until the next
				// flush; it is not data, so dirtyData stays as-is.
			} else {
				dirtyData = true
			}
		case gorySignal[name]:
			if dirtyData {
				pass.Reportf(call.Pos(), "%s before FlushWCB of the preceding MPB data write (paper §3.1: flush write-combined data before signalling)", name)
				dirtyData = false // one report per unflushed write
			}
		case goryDataRead[name]:
			if needInval {
				pass.Reportf(call.Pos(), "MPB read after a flag wait without InvalidateMPB: the L1 may serve stale MPBT lines (paper §3.1: invalidate before the remote get)")
				needInval = false // one report per missing invalidate
			}
		case goryWait[name]:
			needInval = true
		}
		return true
	})
}

// collectFlagOffsetIdents finds local identifiers assigned from
// FlagByteAt-derived expressions, so that WriteMPB(dev, tile, base+sentOff)
// is recognized as a flag write even when the offset was hoisted.
func collectFlagOffsetIdents(fd *ast.FuncDecl) map[string]bool {
	idents := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !exprMentionsFlagOffset(rhs, nil) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				idents[id.Name] = true
			}
		}
		return true
	})
	return idents
}

// isFlagWrite reports whether a WriteMPB-class call targets a flag byte:
// an argument mentions FlagByteAt/ScratchByteAt, a *FlagBase constant, or
// a hoisted flag-offset identifier.
func isFlagWrite(call *ast.CallExpr, flagOffIdents map[string]bool) bool {
	for _, arg := range call.Args {
		if exprMentionsFlagOffset(arg, flagOffIdents) {
			return true
		}
	}
	return false
}

func exprMentionsFlagOffset(e ast.Expr, flagOffIdents map[string]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			name := calleeName(n)
			if name == "FlagByteAt" || name == "ScratchByteAt" {
				found = true
			}
		case *ast.Ident:
			if strings.HasSuffix(n.Name, "FlagBase") || strings.HasSuffix(n.Name, "flagBase") || flagOffIdents[n.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}
