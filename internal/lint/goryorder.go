package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// GoryOrderAnalyzer checks the gory-protocol ordering discipline of the
// SCC's non-coherent memory model (paper §3.1, RCCE's "gory" interface):
//
//   - flush-before-flag: after an MPB data write (WriteMPB/WriteV), the
//     write-combine buffer must be flushed (FlushWCB) before any flag is
//     signalled (SignalSent/SignalReady/setSent/setReady/FlagSet, or a
//     raw WriteMPB of a flag byte). A flag that overtakes combined data
//     publishes a message the receiver cannot yet see.
//   - invalidate-before-read: after waiting on (or consuming) a flag,
//     an MPB data read (ReadMPB/ReadV) must be preceded by
//     InvalidateMPB, or the L1 may serve stale MPBT lines cached before
//     the peer's write.
//
// The check is a linear, path-insensitive scan over each function body:
// events are matched by callee name in syntactic order, so straight-line
// protocol code — the shape of every gory call site in this repository —
// is checked exactly, while branchy code may need a //lint:ignore with a
// short proof. The runtime MPB consistency checker (scc.Checker, enabled
// with -check) covers the path-sensitive remainder.
//
// The scan is interprocedural: calls into the gory-protocol packages
// (internal/{rcce,ircce,vscc,scc} and the repository root) splice the
// callee's effect summary — its ordered sequence of writes, flushes,
// signals, waits, invalidates and reads, computed bottom-up over the
// call graph — into the caller's state machine. A helper that signals
// while the caller's data sits unflushed, or a callee that leaves an
// unflushed write behind for the caller to signal over, is reported at
// the call boundary with the offending call chain. Only uniquely
// resolved calls are spliced (precision over recall: an ambiguous
// interface dispatch contributes nothing rather than a wrong sequence);
// violations wholly inside one callee are that callee's own findings
// and are not re-reported at call sites.
func GoryOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goryorder",
		Doc:  "gory-protocol call sites must flush before signalling and invalidate after waiting, across call boundaries",
		Applies: func(p string) bool {
			return pkgPathIn(p, goryPackages...) || !strings.Contains(p, "/")
		},
		Run: runGoryOrder,
	}
}

// Event classes, matched by callee name.
var (
	goryFlush = map[string]bool{
		"FlushWCB": true,
		// Put/PutV flush the WCB internally before returning (rank.go,
		// gory.go), so at the call site they leave no combined data behind
		// — including any earlier unflushed WriteMPB.
		"Put": true, "PutV": true,
	}
	goryInval = map[string]bool{
		"InvalidateMPB": true,
		// Get/GetV invalidate internally before reading, so at the call
		// site they behave like an invalidate (the L1 holds only fresh
		// lines afterwards).
		"Get": true, "GetV": true,
	}
	goryDataWrite = map[string]bool{"WriteMPB": true, "WriteV": true}
	goryDataRead  = map[string]bool{"ReadMPB": true, "ReadV": true}
	gorySignal    = map[string]bool{
		"SignalSent": true, "SignalReady": true,
		"setSent": true, "setReady": true, "FlagSet": true,
	}
	goryWait = map[string]bool{
		"AwaitSent": true, "AwaitReady": true,
		"waitSent": true, "waitReady": true, "waitClearFlag": true,
		"WaitFlag": true, "FlagWait": true,
		"ClearSent": true, "ClearReady": true,
		"PeekSent": true, "PeekReady": true, "PeekFlagByte": true,
	}
)

// goryEvent kinds, in the order the state machine consumes them.
const (
	evDataWrite = iota
	evFlagWrite
	evFlush
	evInval
	evDataRead
	evSignal
	evWait
)

// goryEvent is one abstract protocol action in a function's linearized
// event stream: either a direct primitive call or an action spliced in
// from a callee's summary.
type goryEvent struct {
	kind int
	// name is the primitive's callee name, for messages.
	name string
	// pos/site: pos is where a violation is reported; site identifies
	// the top-level body node the event came from, so that a setter and
	// a violator spliced from the SAME call are recognized as callee-
	// internal (the callee's own scan reports those).
	pos, site token.Pos
	// chain names the call path for spliced events (outermost callee
	// first); nil for direct primitive calls.
	chain []string
}

// gorySummaryScope are the packages whose functions get gory-effect
// summaries; everything else (sim, trace, host plumbing, stats, cmd)
// never touches the gory primitives and summarizes to nothing. The
// scope buys precision too: generic method names the event classes
// share with unrelated code (Get on a cache, Put on a pool) cannot
// smuggle phantom events in from outside the protocol layers.
func inGorySummaryScope(pkgPath string) bool {
	return pkgPathIn(pkgPath, goryPackages...) ||
		pkgPathIn(pkgPath, "internal/scc") ||
		!strings.Contains(pkgPath, "/")
}

// goryEventCap bounds summary sequences; protocol bodies are short, and
// a truncated tail only costs recall, never precision.
const goryEventCap = 64

// sumEvent is one entry of a function's gory-effect summary.
type sumEvent struct {
	kind  int
	name  string
	chain []string // call path from the summarized function down
}

// GorySummary returns fi's ordered gory-effect sequence, splicing
// uniquely resolved callees bottom-up. Memoized; recursion contributes
// nothing (a cycle cannot order effects its members do not already
// order).
func (g *CallGraph) GorySummary(fi *FuncInfo) []sumEvent {
	if s, ok := g.goryMemo[fi]; ok {
		return s
	}
	if g.goryPath[fi] || !inGorySummaryScope(fi.Pkg.Path) {
		return nil
	}
	g.goryPath[fi] = true
	defer delete(g.goryPath, fi)

	flagOffIdents := collectFlagOffsetIdents(fi.Decl)
	var out []sumEvent
	emit := func(kind int, name string, chain []string) {
		if len(out) < goryEventCap {
			out = append(out, sumEvent{kind: kind, name: name, chain: chain})
		}
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		switch {
		case goryFlush[name]:
			emit(evFlush, name, []string{fi.Name})
		case goryInval[name]:
			emit(evInval, name, []string{fi.Name})
		case goryDataWrite[name]:
			if isFlagWrite(call, flagOffIdents) {
				emit(evFlagWrite, name, []string{fi.Name})
			} else {
				emit(evDataWrite, name, []string{fi.Name})
			}
		case gorySignal[name]:
			emit(evSignal, name, []string{fi.Name})
		case goryDataRead[name]:
			emit(evDataRead, name, []string{fi.Name})
		case goryWait[name]:
			emit(evWait, name, []string{fi.Name})
		default:
			if callees, unique := g.Resolve(fi.Pkg, fi.imports, call); unique {
				for _, ev := range g.GorySummary(callees[0]) {
					emit(ev.kind, ev.name, appendChain(fi.Name, ev.chain))
				}
			}
		}
		return true
	})
	g.goryMemo[fi] = out
	return out
}

func runGoryOrder(pass *Pass) {
	for _, f := range pass.Files {
		imports := importTable(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoryFunc(pass, imports, fd)
		}
	}
}

// goryProv records which event set a state bit, for cross-boundary
// attribution in diagnostics.
type goryProv struct {
	site  token.Pos
	name  string
	chain []string
}

func (p *goryProv) describe() string {
	if len(p.chain) > 0 {
		return p.name + " via " + FormatChain(p.chain)
	}
	return p.name
}

// checkGoryFunc runs the order state machine over one function's
// linearized event stream: direct primitive calls in syntactic order,
// with uniquely resolved callees expanded to their summaries. A
// violation whose setter and violator came from the same call site is
// callee-internal and skipped here — the callee's own scan reports it.
func checkGoryFunc(pass *Pass, imports map[string]string, fd *ast.FuncDecl) {
	flagOffIdents := collectFlagOffsetIdents(fd)
	cg := pass.CallGraph()

	var dirty *goryProv // an MPB data write sitting unflushed in the WCB
	var await *goryProv // a flag wait happened with no InvalidateMPB since
	step := func(ev goryEvent) {
		switch ev.kind {
		case evFlush:
			dirty = nil
		case evInval:
			await = nil
		case evDataWrite:
			dirty = &goryProv{site: ev.site, name: ev.name, chain: ev.chain}
		case evFlagWrite:
			// A raw flag-byte store is a signal: combined data must
			// already be flushed. The flag byte itself then sits in the
			// WCB until the next flush; it is not data, so dirty stays.
			if dirty != nil && dirty.site != ev.site {
				if len(ev.chain) > 0 || len(dirty.chain) > 0 {
					pass.ReportChain(ev.pos, violationChain(ev, dirty),
						"flag byte written (%s) before FlushWCB of the preceding MPB data write (%s) (paper §3.1: flush write-combined data before signalling)",
						eventDesc(ev), dirty.describe())
				} else {
					pass.Reportf(ev.pos, "flag byte written before FlushWCB of the preceding MPB data write (paper §3.1: flush write-combined data before signalling)")
				}
			}
		case evSignal:
			if dirty != nil && dirty.site != ev.site {
				if len(ev.chain) > 0 || len(dirty.chain) > 0 {
					pass.ReportChain(ev.pos, violationChain(ev, dirty),
						"%s before FlushWCB of the preceding MPB data write (%s) (paper §3.1: flush write-combined data before signalling)",
						eventDesc(ev), dirty.describe())
				} else {
					pass.Reportf(ev.pos, "%s before FlushWCB of the preceding MPB data write (paper §3.1: flush write-combined data before signalling)", ev.name)
				}
				dirty = nil // one report per unflushed write
			}
		case evDataRead:
			if await != nil && await.site != ev.site {
				if len(ev.chain) > 0 || len(await.chain) > 0 {
					pass.ReportChain(ev.pos, violationChain(ev, await),
						"MPB read (%s) after a flag wait (%s) without InvalidateMPB: the L1 may serve stale MPBT lines (paper §3.1: invalidate before the remote get)",
						eventDesc(ev), await.describe())
				} else {
					pass.Reportf(ev.pos, "MPB read after a flag wait without InvalidateMPB: the L1 may serve stale MPBT lines (paper §3.1: invalidate before the remote get)")
				}
				await = nil // one report per missing invalidate
			}
		case evWait:
			await = &goryProv{site: ev.site, name: ev.name, chain: ev.chain}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		switch {
		case goryFlush[name]:
			step(goryEvent{kind: evFlush, name: name, pos: call.Pos(), site: call.Pos()})
		case goryInval[name]:
			step(goryEvent{kind: evInval, name: name, pos: call.Pos(), site: call.Pos()})
		case goryDataWrite[name]:
			kind := evDataWrite
			if isFlagWrite(call, flagOffIdents) {
				kind = evFlagWrite
			}
			step(goryEvent{kind: kind, name: name, pos: call.Pos(), site: call.Pos()})
		case gorySignal[name]:
			step(goryEvent{kind: evSignal, name: name, pos: call.Pos(), site: call.Pos()})
		case goryDataRead[name]:
			step(goryEvent{kind: evDataRead, name: name, pos: call.Pos(), site: call.Pos()})
		case goryWait[name]:
			step(goryEvent{kind: evWait, name: name, pos: call.Pos(), site: call.Pos()})
		default:
			callees, unique := cg.Resolve(pass.Pkg, imports, call)
			if !unique {
				return true
			}
			for _, ev := range cg.GorySummary(callees[0]) {
				step(goryEvent{kind: ev.kind, name: ev.name, pos: call.Pos(), site: call.Pos(), chain: ev.chain})
			}
		}
		return true
	})
}

// eventDesc names a (possibly spliced) event for a diagnostic.
func eventDesc(ev goryEvent) string {
	if len(ev.chain) > 0 {
		return ev.name + " via " + FormatChain(ev.chain)
	}
	return ev.name
}

// violationChain picks the machine-readable chain for a cross-boundary
// violation: the violator's chain when it is spliced, else the setter's.
func violationChain(ev goryEvent, set *goryProv) []string {
	if len(ev.chain) > 0 {
		return ev.chain
	}
	return set.chain
}

// collectFlagOffsetIdents finds local identifiers assigned from
// FlagByteAt-derived expressions, so that WriteMPB(dev, tile, base+sentOff)
// is recognized as a flag write even when the offset was hoisted.
func collectFlagOffsetIdents(fd *ast.FuncDecl) map[string]bool {
	idents := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !exprMentionsFlagOffset(rhs, nil) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				idents[id.Name] = true
			}
		}
		return true
	})
	return idents
}

// isFlagWrite reports whether a WriteMPB-class call targets a flag byte:
// an argument mentions FlagByteAt/ScratchByteAt, a *FlagBase constant, or
// a hoisted flag-offset identifier.
func isFlagWrite(call *ast.CallExpr, flagOffIdents map[string]bool) bool {
	for _, arg := range call.Args {
		if exprMentionsFlagOffset(arg, flagOffIdents) {
			return true
		}
	}
	return false
}

func exprMentionsFlagOffset(e ast.Expr, flagOffIdents map[string]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			name := calleeName(n)
			if name == "FlagByteAt" || name == "ScratchByteAt" {
				found = true
			}
		case *ast.Ident:
			if strings.HasSuffix(n.Name, "FlagBase") || strings.HasSuffix(n.Name, "flagBase") || flagOffIdents[n.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}
