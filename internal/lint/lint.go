// Package lint is the project-specific static-analysis suite behind
// cmd/vsccvet. It turns the paper's non-coherent-memory programming
// discipline (explicit InvalidateMPB / FlushWCB ordering around flag
// signals, §3–4) and this repository's own invariants (kernel-clock-only
// time, seeded determinism, zero-alloc disabled trace paths) into
// machine-checked rules.
//
// The driver is stdlib-only: packages load through go/parser and
// type-check best-effort through go/types (see load.go). Each Analyzer
// reports file:line diagnostics carrying a rule ID; a finding is
// suppressed by a
//
//	//lint:ignore <rule> <reason>
//
// comment on the reported line or the line directly above it. The reason
// is mandatory — a suppression without one is itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Rule     string
	Position token.Position
	Message  string
	// Chain is the call chain reaching the offending construct, for
	// interprocedural findings (outermost first). Empty for local ones.
	Chain []string
}

// String formats a diagnostic as path:line:col: rule: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Position.Filename, d.Position.Line, d.Position.Column, d.Rule, d.Message)
}

// Pass carries one (analyzer, package) run.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	// Prog is the whole loaded program, for interprocedural analyzers
	// that need the module-wide call graph.
	Prog *Program
	// Files is what the analyzer walks: build files plus test files.
	Files []*ast.File
	// Info is the best-effort type information for the build files; test
	// file nodes are not present, so lookups must tolerate misses.
	Info *types.Info

	report func(pos token.Pos, msg string, chain []string)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...), nil)
}

// ReportChain records a diagnostic carrying the call chain that reaches
// the offending construct; the chain also lands in the -json output.
func (p *Pass) ReportChain(pos token.Pos, chain []string, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...), chain)
}

// CallGraph returns the module-wide call graph, built lazily on first
// use and shared by every interprocedural analyzer of the run.
func (p *Pass) CallGraph() *CallGraph { return p.Prog.CallGraph() }

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Analyzer is one vet rule.
type Analyzer struct {
	// Name is the rule ID used in diagnostics and //lint:ignore comments.
	Name string
	// Doc is a one-line description shown by vsccvet -rules.
	Doc string
	// Applies filters packages by import path; nil means every package.
	Applies func(pkgPath string) bool
	// Run reports the rule's findings for one package.
	Run func(*Pass)
}

// Run applies the analyzers to every package of the program and returns
// the surviving (non-suppressed) diagnostics in deterministic order.
func Run(pr *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pr.Packages() {
		diags = append(diags, RunPackage(pr, pkg, analyzers)...)
	}
	sortDiagnostics(diags)
	return diags
}

// RunPackage applies the analyzers (honoring Applies) to one package.
// Suppressions that cover no finding of any rule that ran are reported
// as diagnostics themselves — a stale //lint:ignore hides future bugs.
func RunPackage(pr *Program, pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	sup := collectSuppressions(pr.Fset, pkg)
	diags = append(diags, sup.malformed...)
	ran := map[string]bool{}
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(pkg.Path) {
			continue
		}
		ran[a.Name] = true
		rule := a.Name
		pass := &Pass{
			Fset:  pr.Fset,
			Pkg:   pkg,
			Prog:  pr,
			Files: pkg.AllFiles(),
			Info:  pkg.Info,
			report: func(pos token.Pos, msg string, chain []string) {
				position := pr.Fset.Position(pos)
				if sup.suppressed(rule, position) {
					return
				}
				diags = append(diags, Diagnostic{Rule: rule, Position: position, Message: msg, Chain: chain})
			},
		}
		a.Run(pass)
	}
	diags = append(diags, sup.unused(ran)...)
	sortDiagnostics(diags)
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Rule < b.Rule
	})
}

// supEntry is one //lint:ignore comment: its position, the rules it
// names, and whether it has suppressed any finding this run.
type supEntry struct {
	pos   token.Position
	rules []string
	used  bool
}

// suppressions indexes //lint:ignore comments by (file, line).
type suppressions struct {
	// byLine maps file -> comment line -> entries on that line.
	byLine    map[string]map[int][]*supEntry
	entries   []*supEntry // in scan order, for the unused report
	malformed []Diagnostic
}

const ignorePrefix = "//lint:ignore"

// collectSuppressions scans every comment of the package.
func collectSuppressions(fset *token.FileSet, pkg *Package) *suppressions {
	s := &suppressions{byLine: map[string]map[int][]*supEntry{}}
	for _, f := range pkg.AllFiles() {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Rule:     "lint",
						Position: pos,
						Message:  "malformed suppression: want //lint:ignore <rule> <reason>",
					})
					continue
				}
				e := &supEntry{pos: pos, rules: strings.Split(fields[0], ",")}
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]*supEntry{}
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], e)
				s.entries = append(s.entries, e)
			}
		}
	}
	return s
}

// suppressed reports whether a rule finding at position is covered by a
// suppression on the same line or the line directly above, marking the
// covering entry used.
func (s *suppressions) suppressed(rule string, pos token.Position) bool {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, e := range lines[l] {
			for _, r := range e.rules {
				if r == rule || r == "all" {
					e.used = true
					return true
				}
			}
		}
	}
	return false
}

// unused reports the suppression comments that covered no finding. A
// comment is only reportable when every rule it names actually ran on
// this package (ran holds the Applies-filtered analyzer names) — a
// suppression for a rule outside this run might be load-bearing for a
// different tool or invocation. "all" counts as ran when any rule did.
func (s *suppressions) unused(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, e := range s.entries {
		if e.used {
			continue
		}
		covered := true
		for _, r := range e.rules {
			if r == "all" {
				covered = covered && len(ran) > 0
			} else {
				covered = covered && ran[r]
			}
		}
		if !covered {
			continue
		}
		out = append(out, Diagnostic{
			Rule:     "lint",
			Position: e.pos,
			Message: fmt.Sprintf("unused suppression for %s: no finding on this or the next line; delete the stale //lint:ignore",
				strings.Join(e.rules, ",")),
		})
	}
	return out
}

// --- shared analyzer helpers ---------------------------------------------

// importTable maps local import names to import paths for one file.
func importTable(f *ast.File) map[string]string {
	t := map[string]string{}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		t[name] = path
	}
	return t
}

// calleeName returns the bare function or method name of a call, ignoring
// the receiver or package qualifier: x.FlushWCB() and FlushWCB() both
// yield "FlushWCB".
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// hasSuffixPath reports whether pkgPath is path or ends in "/"+path.
func hasSuffixPath(pkgPath, path string) bool {
	return pkgPath == path || strings.HasSuffix(pkgPath, "/"+path)
}

// pkgPathIn reports whether pkgPath matches any entry.
func pkgPathIn(pkgPath string, suffixes ...string) bool {
	for _, s := range suffixes {
		if hasSuffixPath(pkgPath, s) {
			return true
		}
	}
	return false
}

// DefaultAnalyzers returns the full vsccvet rule suite with its
// per-package applicability:
//
//   - kernelclock audits the model packages, where all time and
//     concurrency must flow through internal/sim, plus internal/sim
//     itself in a relaxed mode (real concurrency sanctioned, wall
//     clock still banned),
//   - detorder audits the same set for map iterations whose randomized
//     order can reach kernel-clock-visible state or pick a winner,
//   - goryorder audits the gory-protocol packages plus the repository
//     root (whose integration tests exercise raw protocols),
//   - faultorder audits the inter-device protocol layers (vscc, ircce),
//     where every engaged wait must carry a cycle budget,
//   - flagdiscipline, tracealloc and simapi audit everything.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		KernelClockAnalyzer(),
		DetOrderAnalyzer(),
		GoryOrderAnalyzer(),
		FaultOrderAnalyzer(),
		FlagDisciplineAnalyzer(),
		TraceAllocAnalyzer(),
		SimAPIAnalyzer(),
	}
}

// modelPackages are the packages whose concurrency and time must flow
// through internal/sim.
var modelPackages = []string{
	"internal/noc", "internal/pcie", "internal/host", "internal/rcce",
	"internal/ircce", "internal/vscc", "internal/scc", "internal/mem",
	"internal/sched", "internal/taskrt",
}

// enginePackages hold the sanctioned concurrency channel itself: the
// event kernel and its PDES workers may use sync and channels, but the
// wall clock and process-global randomness stay forbidden even there.
var enginePackages = []string{"internal/sim"}

// goryPackages are the packages holding gory-protocol call sites.
var goryPackages = []string{"internal/rcce", "internal/ircce", "internal/vscc"}
