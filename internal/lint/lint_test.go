package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestAnalyzersGolden diffs every analyzer against its testdata fixture
// package. The fixture import path places it where the analyzer's
// Applies filter expects its targets (model package, protocol extension,
// plain package).
func TestAnalyzersGolden(t *testing.T) {
	tests := []struct {
		analyzer   *Analyzer
		dir        string
		importPath string
		deps       []FixtureDep
	}{
		{KernelClockAnalyzer(), "kernelclock", "vscc/internal/noc", nil},
		{KernelClockAnalyzer(), "kernelclock_engine", "vscc/internal/sim", nil},
		{KernelClockAnalyzer(), "kernelclock_ipa", "vscc/internal/noc", []FixtureDep{
			{filepath.Join("testdata", "src", "kernelclock_ipa_util"), "vscc/internal/util"},
		}},
		{DetOrderAnalyzer(), "detorder", "vscc/internal/noc", nil},
		{GoryOrderAnalyzer(), "goryorder", "vscc/internal/rcce", nil},
		{GoryOrderAnalyzer(), "goryorder_ipa", "vscc/internal/vscc", nil},
		{FaultOrderAnalyzer(), "faultorder", "vscc/internal/vscc", nil},
		{FlagDisciplineAnalyzer(), "flagdiscipline", "fixture/flagdiscipline", nil},
		{FlagDisciplineAnalyzer(), "flagdiscipline_ext", "vscc/internal/ircce", nil},
		{TraceAllocAnalyzer(), "tracealloc", "fixture/tracealloc", nil},
		{SimAPIAnalyzer(), "simapi", "fixture/simapi", nil},
	}
	for _, tt := range tests {
		t.Run(tt.dir, func(t *testing.T) {
			RunAnalyzerTest(t, tt.analyzer, filepath.Join("testdata", "src", tt.dir), tt.importPath, tt.deps...)
		})
	}
}

// TestSuppressions pins down the //lint:ignore contract: same line or
// line above, comma-separated rule lists, the "all" wildcard, wrong-rule
// comments not suppressing, and reason-less comments being findings
// themselves.
func TestSuppressions(t *testing.T) {
	const src = `package p

type c struct{}

func (c) Delay(d uint64) {}

func f(x c, a, b uint64) {
	x.Delay(a - b)
	//lint:ignore simapi,othertool proof: a is b plus cost
	x.Delay(a - b)
	x.Delay(a - b) //lint:ignore all broad proof
	//lint:ignore goryorder wrong rule for this finding
	x.Delay(a - b)
	//lint:ignore simapi
	x.Delay(a - b)
}
`
	pr := NewProgram()
	pkg, err := pr.ParseFixtureFile("sup.go", src, "fixture/sup")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunPackage(pr, pkg, []*Analyzer{SimAPIAnalyzer()})

	type finding struct {
		rule string
		line int
	}
	var got []finding
	for _, d := range diags {
		got = append(got, finding{d.Rule, d.Position.Line})
	}
	want := []finding{
		{"simapi", 8},  // unsuppressed baseline
		{"simapi", 13}, // preceding comment names a different rule
		{"lint", 14},   // reason-less suppression is malformed...
		{"simapi", 15}, // ...and does not suppress
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %v", len(got), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diag %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// TestUnusedSuppression pins the stale-suppression report: a
// //lint:ignore covering no finding of a rule that ran is itself a
// finding, while a suppression naming a rule outside the run is left
// alone (it may be load-bearing for another tool or invocation).
func TestUnusedSuppression(t *testing.T) {
	const src = `package p

type c struct{}

func (c) Delay(d uint64) {}

func f(x c, a, b uint64) {
	//lint:ignore simapi stale proof left behind by a refactor
	x.Delay(a + b)
	//lint:ignore othertool not vsccvet's rule, must survive
	x.Delay(a + b)
}
`
	pr := NewProgram()
	pkg, err := pr.ParseFixtureFile("unused.go", src, "fixture/unused")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunPackage(pr, pkg, []*Analyzer{SimAPIAnalyzer()})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics %v, want exactly the unused-suppression report", len(diags), diags)
	}
	d := diags[0]
	if d.Rule != "lint" || d.Position.Line != 8 || !strings.Contains(d.Message, "unused suppression for simapi") {
		t.Errorf("got %s, want lint: unused suppression for simapi at line 8", d)
	}
}

// TestDiagnosticChain pins that interprocedural findings carry the call
// chain as structured data (the -json contract), not only inside the
// message text.
func TestDiagnosticChain(t *testing.T) {
	pr := NewProgram()
	if _, err := pr.LoadDir(filepath.Join("testdata", "src", "kernelclock_ipa_util"), "vscc/internal/util"); err != nil {
		t.Fatal(err)
	}
	pkg, err := pr.LoadDir(filepath.Join("testdata", "src", "kernelclock_ipa"), "vscc/internal/noc")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunPackage(pr, pkg, []*Analyzer{KernelClockAnalyzer()})
	var deep *Diagnostic
	for i, d := range diags {
		if strings.Contains(d.Message, "util.Stamp2") {
			deep = &diags[i]
		}
	}
	if deep == nil {
		t.Fatalf("no diagnostic through util.Stamp2 in %v", diags)
	}
	want := []string{"util.Stamp2", "util.stampIndirect", "util.SlowStamp"}
	if len(deep.Chain) != len(want) {
		t.Fatalf("chain = %v, want %v", deep.Chain, want)
	}
	for i := range want {
		if deep.Chain[i] != want[i] {
			t.Fatalf("chain = %v, want %v", deep.Chain, want)
		}
	}
}

// TestDiagnosticString pins the path:line:col: rule: message format the
// CI log parser and editors rely on.
func TestDiagnosticString(t *testing.T) {
	pr := NewProgram()
	pkg, err := pr.ParseFixtureFile("d.go", "package p\n\nfunc f(p interface{ Delay(uint64) }, a, b uint64) {\n\tp.Delay(a - b)\n}\n", "fixture/d")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunPackage(pr, pkg, []*Analyzer{SimAPIAnalyzer()})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1", len(diags))
	}
	s := diags[0].String()
	if !strings.HasPrefix(s, "d.go:4:10: simapi: ") {
		t.Errorf("diagnostic string = %q, want d.go:4:10: simapi: prefix", s)
	}
}

// TestRepoIsLintClean runs the full rule suite over the repository the
// way cmd/vsccvet does, pinning the tree at zero findings so CI catches
// new violations the moment they are introduced.
func TestRepoIsLintClean(t *testing.T) {
	pr, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(pr, DefaultAnalyzers()) {
		t.Errorf("%s", d)
	}
}

// TestLoadModule sanity-checks the loader: the module resolves, known
// packages are present, and module-local type information exists.
func TestLoadModule(t *testing.T) {
	pr, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if pr.ModulePath != "vscc" {
		t.Fatalf("module path = %q, want vscc", pr.ModulePath)
	}
	for _, path := range []string{"vscc", "vscc/internal/sim", "vscc/internal/scc", "vscc/internal/rcce", "vscc/internal/lint"} {
		pkg := pr.Package(path)
		if pkg == nil {
			t.Fatalf("package %s not loaded", path)
		}
		if len(pkg.Files) > 0 && pkg.Types == nil {
			t.Errorf("package %s has no type information", path)
		}
	}
	if pr.Package("vscc/internal/lint/testdata/src/simapi") != nil {
		t.Error("testdata fixture leaked into the module load")
	}
}
