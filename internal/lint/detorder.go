package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetOrderAnalyzer flags map iteration whose order can leak into
// kernel-clock-visible state. Go randomizes map iteration per run, so a
// `for range m` whose body emits traces, posts events, stores to
// MPB/LMB or decides admission produces byte-different reruns — the
// exact failure class the five byte-identity CI gates exist to catch,
// except those gates only see it once a workload happens to populate
// the map with two entries.
//
// Two shapes are reported:
//
//   - early-exit selection: the loop body can `return` or `break`, so
//     WHICH element wins depends on iteration order (the first-fit
//     allocator bug pattern), regardless of what the body calls;
//   - effectful bodies: the body performs — directly or through any
//     call chain the module call graph can reach — a kernel-visible
//     effect (trace emission, event scheduling, MPB/LMB stores, flag
//     signals), so the ORDER of iterations is observable.
//
// The deterministic idioms stay clean by construction: extracting keys
// into a slice and sorting before the effectful loop ranges over a
// slice, not a map; a body that only `delete`s from the map or
// accumulates into locals (sums, appends that are sorted later) has
// neither an early exit nor a reachable effect. Order-insensitive
// bodies the analysis cannot prove carry a //lint:ignore detorder with
// the proof.
//
// The check needs type information to know an expression is a map, so
// test files (parsed but not type-checked) are not audited; the
// byte-identity gates cover the test harness dynamically.
func DetOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "detorder",
		Doc:  "no map iteration where order can reach kernel-clock-visible state or pick a winner",
		Applies: func(p string) bool {
			return pkgPathIn(p, modelPackages...) || pkgPathIn(p, enginePackages...)
		},
		Run: runDetOrder,
	}
}

func runDetOrder(pass *Pass) {
	cg := pass.CallGraph()
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		imports := importTable(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(pass, rs) {
				return true
			}
			checkMapRange(pass, cg, imports, rs)
			return true
		})
	}
}

// isMapRange reports whether the range expression is map-typed.
func isMapRange(pass *Pass, rs *ast.RangeStmt) bool {
	if pass.Info == nil {
		return false
	}
	tv, ok := pass.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// checkMapRange applies the two order-sensitivity triggers to one
// map-range statement.
func checkMapRange(pass *Pass, cg *CallGraph, imports map[string]string, rs *ast.RangeStmt) {
	// Trigger 1: early exit — the chosen iteration depends on order.
	if exit := earlyExit(rs.Body); exit != nil {
		pass.Reportf(rs.For,
			"map iteration with an early exit: which entry wins depends on Go's randomized map order; extract the keys, sort them, and range over the slice (or prove order-insensitivity with //lint:ignore detorder <proof>)")
		return // one report per loop
	}
	// Trigger 2: a kernel-visible effect reachable from the body.
	var reported bool
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if what, hit := kernelVisibleFuncs[name]; hit {
			reported = true
			pass.Reportf(rs.For,
				"map iteration body performs %s via %s: iteration order is randomized per run and lands in kernel-clock-visible state; sort the keys first", what, name)
			return false
		}
		callees, _ := cg.Resolve(pass.Pkg, imports, call)
		for _, c := range callees {
			if w := cg.VisibleWitness(c); w != nil {
				reported = true
				pass.ReportChain(rs.For, w.Chain,
					"map iteration body reaches %s through %s: iteration order is randomized per run and lands in kernel-clock-visible state; sort the keys first", w.What, FormatChain(w.Chain))
				return false
			}
		}
		return true
	})
}

// earlyExit returns the first statement that can leave the loop before
// the map is exhausted: a return, or a break binding to this loop.
// Breaks inside nested for/switch/select bind tighter and do not count;
// labeled breaks are conservatively counted (they may target this loop
// or one further out — either way an enclosing map range exits early).
func earlyExit(body *ast.BlockStmt) ast.Stmt {
	var found ast.Stmt
	var walk func(s ast.Stmt, breakBindsHere bool)
	walkList := func(list []ast.Stmt, breakBindsHere bool) {
		for _, s := range list {
			if found == nil {
				walk(s, breakBindsHere)
			}
		}
	}
	walk = func(s ast.Stmt, breakBindsHere bool) {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			found = s
		case *ast.BranchStmt:
			if s.Tok == token.BREAK && (breakBindsHere || s.Label != nil) {
				found = s
			}
			if s.Tok == token.GOTO {
				found = s // conservative: a goto can leave the loop
			}
		case *ast.BlockStmt:
			walkList(s.List, breakBindsHere)
		case *ast.IfStmt:
			walk(s.Body, breakBindsHere)
			if s.Else != nil {
				walk(s.Else, breakBindsHere)
			}
		case *ast.ForStmt:
			walk(s.Body, false)
		case *ast.RangeStmt:
			walk(s.Body, false)
		case *ast.SwitchStmt:
			walkList(s.Body.List, false)
		case *ast.TypeSwitchStmt:
			walkList(s.Body.List, false)
		case *ast.SelectStmt:
			walkList(s.Body.List, false)
		case *ast.CaseClause:
			walkList(s.Body, false)
		case *ast.CommClause:
			walkList(s.Body, false)
		case *ast.LabeledStmt:
			walk(s.Stmt, breakBindsHere)
		}
	}
	walkList(body.List, true)
	return found
}
