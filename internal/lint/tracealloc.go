package lint

import (
	"go/ast"
	"go/token"
)

// TraceAllocAnalyzer protects the zero-alloc disabled trace path (PR 2):
// instrumented model code calls the sink unconditionally and relies on
// the nil-receiver no-op, which only stays allocation-free if the call
// site does not build its span/counter name first. A fmt.Sprintf or
// dynamic string concatenation in an argument allocates before the nil
// check runs — on every event, tracing on or off.
//
// The approved idiom (trace.Sink.Enabled docs) hoists label building
// behind an explicit guard, which this analyzer recognizes in two forms:
//
//	if sink.Enabled() { sink.Span(tr, fmt.Sprintf(...), a, b) }
//
//	if !sink.Enabled() { return }      // or: if sink == nil { return }
//	... sink.Span(tr, fmt.Sprintf(...), a, b)
//
// Precomputed names (fields set once in Instrument) and constant-folded
// concatenations are always fine.
func TraceAllocAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "tracealloc",
		Doc:  "no dynamic span/counter name building at unguarded instrumentation call sites",
		Run:  runTraceAlloc,
	}
}

// sinkRecordMethods are the trace.Sink recording entry points that take
// event names on the hot path. Track registration and exporters run at
// setup/report time and may allocate freely.
var sinkRecordMethods = map[string]bool{
	"Span": true, "Instant": true, "Add": true, "Gauge": true, "Observe": true,
}

func runTraceAlloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkTraceAllocBlock(pass, fd.Body.List, false)
		}
	}
}

// checkTraceAllocBlock walks one statement list. guarded is true once the
// enclosing context proved the sink enabled (Enabled() or non-nil).
func checkTraceAllocBlock(pass *Pass, stmts []ast.Stmt, guarded bool) {
	for _, st := range stmts {
		switch st := st.(type) {
		case *ast.IfStmt:
			thenGuard := guarded || isEnabledCond(st.Cond)
			checkTraceAllocBlock(pass, st.Body.List, thenGuard)
			if st.Else != nil {
				switch e := st.Else.(type) {
				case *ast.BlockStmt:
					checkTraceAllocBlock(pass, e.List, guarded)
				case *ast.IfStmt:
					checkTraceAllocBlock(pass, []ast.Stmt{e}, guarded)
				}
			}
			// An early-return disabled guard blesses the rest of the list.
			if !guarded && isDisabledCond(st.Cond) && blockExits(st.Body) {
				guarded = true
			}
		case *ast.BlockStmt:
			checkTraceAllocBlock(pass, st.List, guarded)
		case *ast.ForStmt:
			checkTraceAllocBlock(pass, st.Body.List, guarded)
		case *ast.RangeStmt:
			checkTraceAllocBlock(pass, st.Body.List, guarded)
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkTraceAllocBlock(pass, cc.Body, guarded)
				}
			}
		default:
			if guarded {
				continue
			}
			ast.Inspect(st, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); !ok || !sinkRecordMethods[sel.Sel.Name] {
					return true
				}
				for _, arg := range call.Args {
					if bad, what := dynamicStringBuild(pass, arg); bad {
						pass.Reportf(arg.Pos(), "%s builds a trace label with %s at an unguarded call site: this allocates even when tracing is disabled; hoist the name or guard with sink.Enabled()", calleeName(call), what)
						break
					}
				}
				return true
			})
		}
	}
}

// isEnabledCond reports whether an if-condition proves the sink enabled:
// it contains an Enabled() call or an x != nil comparison, not negated.
func isEnabledCond(cond ast.Expr) bool {
	switch c := cond.(type) {
	case *ast.CallExpr:
		if sel, ok := c.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Enabled" {
			return true
		}
	case *ast.BinaryExpr:
		if c.Op == token.NEQ && (isNil(c.X) || isNil(c.Y)) {
			return true
		}
		if c.Op == token.LAND {
			return isEnabledCond(c.X) || isEnabledCond(c.Y)
		}
	}
	return false
}

// isDisabledCond reports whether an if-condition proves the sink
// disabled: !x.Enabled() or x == nil.
func isDisabledCond(cond ast.Expr) bool {
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		return c.Op == token.NOT && isEnabledCond(c.X)
	case *ast.BinaryExpr:
		return c.Op == token.EQL && (isNil(c.X) || isNil(c.Y))
	}
	return false
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// blockExits reports whether a block unconditionally leaves the
// enclosing statement list (return, continue, break, panic).
func blockExits(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			return calleeName(call) == "panic"
		}
	}
	return false
}

// dynamicStringBuild reports whether an argument expression builds a
// string at runtime: a fmt.Sprintf call, or a + concatenation whose
// operands are not all compile-time constants.
func dynamicStringBuild(pass *Pass, e ast.Expr) (bad bool, what string) {
	switch e := e.(type) {
	case *ast.CallExpr:
		if calleeName(e) == "Sprintf" {
			return true, "fmt.Sprintf"
		}
	case *ast.BinaryExpr:
		// Only string concatenation matters; numeric + in an argument
		// (sizes, offsets) does not allocate. Require at least one
		// string-ish leaf: a string literal or a call producing text.
		if e.Op == token.ADD &&
			(!constantExpr(pass, e.X) || !constantExpr(pass, e.Y)) &&
			concatBuildsString(e) {
			return true, "string concatenation"
		}
	}
	return false, ""
}

// constantExpr reports whether the type checker folded e to a constant;
// without type info it falls back to literal checks.
func constantExpr(pass *Pass, e ast.Expr) bool {
	if pass.Info != nil {
		if tv, ok := pass.Info.Types[e]; ok {
			return tv.Value != nil
		}
	}
	_, isLit := e.(*ast.BasicLit)
	return isLit
}

// concatBuildsString reports whether a + expression tree is plausibly a
// string build: it contains a string literal or a call (strconv.Itoa,
// method String, ...) among its leaves.
func concatBuildsString(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BasicLit:
			if n.Kind == token.STRING {
				found = true
			}
		case *ast.CallExpr:
			found = true
		}
		return !found
	})
	return found
}
