// load.go is the package loader behind the vsccvet analyzer driver. It
// is deliberately stdlib-only (go/parser + go/types): the module has no
// third-party dependencies and the lint layer must not introduce one.
//
// The loader parses every package under the module root, then
// type-checks the non-test files best-effort: module-local imports are
// resolved from source in dependency order, while standard-library
// imports resolve to empty stub packages (no export data is needed).
// Type information is therefore complete for module-local types — which
// is what the analyzers use, e.g. "is this Delay on *sim.Proc?" — and
// absent for stdlib types, where the analyzers fall back to syntactic
// import tables.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and best-effort type-checked package.
type Package struct {
	// Path is the import path (module path + directory).
	Path string
	// Dir is the absolute directory.
	Dir string
	// Files holds the non-test build files, in file-name order.
	Files []*ast.File
	// TestFiles holds the _test.go files (in-package and external), in
	// file-name order. They are analyzed but not type-checked.
	TestFiles []*ast.File
	// Types and Info carry the best-effort type-check results of Files.
	Types *types.Package
	Info  *types.Info
}

// AllFiles returns build files followed by test files.
func (p *Package) AllFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files)+len(p.TestFiles))
	out = append(out, p.Files...)
	out = append(out, p.TestFiles...)
	return out
}

// Program is a loaded module: every package, sharing one FileSet.
type Program struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	pkgs  map[string]*Package
	stubs map[string]*types.Package

	checking map[string]bool // import-cycle guard during type checking

	cg *CallGraph // lazily built; invalidated when packages are added
}

// CallGraph returns the module-wide call graph, building it on first
// use. LoadDir invalidates it, so fixture packages loaded later are
// always indexed.
func (pr *Program) CallGraph() *CallGraph {
	if pr.cg == nil {
		pr.cg = NewCallGraph(pr)
	}
	return pr.cg
}

// Packages returns all loaded packages in import-path order.
func (pr *Program) Packages() []*Package {
	paths := make([]string, 0, len(pr.pkgs))
	for p := range pr.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		out = append(out, pr.pkgs[p])
	}
	return out
}

// Package returns a loaded package by import path, or nil.
func (pr *Program) Package(path string) *Package { return pr.pkgs[path] }

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// skipDir reports whether a directory is excluded from module walks, the
// same set the go tool ignores (testdata packages are loaded explicitly
// by the analyzer tests, never by LoadModule).
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// LoadModule loads every package under the module containing dir.
func LoadModule(dir string) (*Program, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	pr := &Program{
		Fset:       token.NewFileSet(),
		ModuleRoot: root,
		ModulePath: mod,
		pkgs:       map[string]*Package{},
		stubs:      map[string]*types.Package{},
		checking:   map[string]bool{},
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != root && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		importPath := mod
		if rel, _ := filepath.Rel(root, d); rel != "." {
			importPath = mod + "/" + filepath.ToSlash(rel)
		}
		pkg, err := pr.parseDir(d, importPath)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pr.pkgs[importPath] = pkg
		}
	}
	for _, pkg := range pr.Packages() {
		pr.ensureChecked(pkg)
	}
	return pr, nil
}

// LoadDir loads a single directory as a package with the given import
// path, type-checking it against the already-loaded program. It is the
// entry point the analyzer test harness uses for testdata fixtures.
func (pr *Program) LoadDir(dir, importPath string) (*Package, error) {
	pkg, err := pr.parseDir(dir, importPath)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pr.pkgs[importPath] = pkg
	pr.ensureChecked(pkg)
	pr.cg = nil
	return pkg, nil
}

// parseDir parses the Go files of one directory; nil if there are none.
func (pr *Program) parseDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: importPath, Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(pr.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, f)
		} else {
			pkg.Files = append(pkg.Files, f)
		}
	}
	if len(pkg.Files) == 0 && len(pkg.TestFiles) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// ensureChecked type-checks a package's build files once, resolving
// module-local imports recursively. Errors are swallowed: the check is
// best-effort and analyzers must tolerate missing type information.
func (pr *Program) ensureChecked(pkg *Package) {
	if pkg.Types != nil || pr.checking[pkg.Path] || len(pkg.Files) == 0 {
		return
	}
	pr.checking[pkg.Path] = true
	defer delete(pr.checking, pkg.Path)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:    (*moduleImporter)(pr),
		Error:       func(error) {}, // best-effort: stdlib members are unresolved stubs
		FakeImportC: true,
	}
	tpkg, _ := conf.Check(pkg.Path, pr.Fset, pkg.Files, info)
	pkg.Types = tpkg
	pkg.Info = info
}

// moduleImporter resolves imports during type checking: module-local
// packages from source, everything else as an empty stub.
type moduleImporter Program

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	pr := (*Program)(m)
	if dep := pr.pkgs[path]; dep != nil && !pr.checking[path] {
		pr.ensureChecked(dep)
		if dep.Types != nil {
			return dep.Types, nil
		}
	}
	if stub, ok := pr.stubs[path]; ok {
		return stub, nil
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	stub := types.NewPackage(path, name)
	stub.MarkComplete()
	pr.stubs[path] = stub
	return stub, nil
}
