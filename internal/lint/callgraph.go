// callgraph.go turns the per-function AST walks of the original rule
// suite into a whole-module analysis substrate. It indexes every
// function and method declaration of the loaded program, resolves call
// sites to candidate callees, and computes memoized per-function effect
// summaries that the interprocedural analyzers (detorder, transitive
// kernelclock, interprocedural goryorder) consume.
//
// Resolution precision, from strongest to weakest:
//
//   - bare calls resolve to the caller's package (f() → pkg.f),
//   - package-qualified calls resolve through the file's import table
//     to module-local packages (rcce.Barrier → internal/rcce.Barrier),
//   - method calls with type information resolve to the concrete
//     receiver's method (r.Send with r *rcce.Rank → (*Rank).Send),
//   - method calls without a concrete receiver — interface dispatch,
//     or call sites in test files, which are parsed but not
//     type-checked — fall back to the module-wide method set: every
//     method with the same name and compatible arity is a candidate.
//
// The fallback over-approximates: it may connect a call to methods the
// dynamic dispatch can never reach. The effect analyses are therefore
// may-analyses (a reported escape might be infeasible, suppressible
// with //lint:ignore and a proof), never must-analyses. Function-value
// calls (f := g; f()) and calls into the standard library (loaded as
// empty stubs) resolve to nothing and contribute no effects — the
// documented soundness gap, acceptable because the invariants being
// checked concern module-local primitives.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FuncInfo is one function or method declaration in the module.
type FuncInfo struct {
	Pkg  *Package
	Decl *ast.FuncDecl
	// Name is the display name used in diagnostic call chains:
	// "pkg.Func" or "pkg.(Type).Method" with pkg the import path's last
	// element.
	Name string
	// Bare is the unqualified function or method name.
	Bare string
	// Recv is the receiver's type name ("" for plain functions).
	Recv string
	// arity is the declared parameter count; variadic counts the slice
	// as one.
	arity    int
	variadic bool
	// imports is the file's local-name → import-path table, for
	// resolving qualified calls inside this function's body.
	imports map[string]string
	// testFile marks declarations in _test.go files; they are excluded
	// from the index (no type info, not part of the model) but kept on
	// the FuncInfo for clarity at call sites that construct one.
	testFile bool
}

// CallGraph indexes the module's function declarations and memoizes the
// per-function effect summaries.
type CallGraph struct {
	pr *Program

	// funcs: package path → bare name → declaration.
	funcs map[string]map[string]*FuncInfo
	// methods: package path → receiver type name → method name → decl.
	methods map[string]map[string]map[string]*FuncInfo
	// byMethod: bare method name → all module methods with that name,
	// sorted for deterministic candidate order (the interface-dispatch
	// over-approximation).
	byMethod map[string][]*FuncInfo

	clockMemo map[*FuncInfo]*clockWitness
	clockPath map[*FuncInfo]bool // DFS on-stack marker
	visMemo   map[*FuncInfo]*visibleWitness
	visPath   map[*FuncInfo]bool
	goryMemo  map[*FuncInfo][]sumEvent
	goryPath  map[*FuncInfo]bool
}

// NewCallGraph indexes every non-test declaration of the program.
func NewCallGraph(pr *Program) *CallGraph {
	g := &CallGraph{
		pr:        pr,
		funcs:     map[string]map[string]*FuncInfo{},
		methods:   map[string]map[string]map[string]*FuncInfo{},
		byMethod:  map[string][]*FuncInfo{},
		clockMemo: map[*FuncInfo]*clockWitness{},
		clockPath: map[*FuncInfo]bool{},
		visMemo:   map[*FuncInfo]*visibleWitness{},
		visPath:   map[*FuncInfo]bool{},
		goryMemo:  map[*FuncInfo][]sumEvent{},
		goryPath:  map[*FuncInfo]bool{},
	}
	for _, pkg := range pr.Packages() {
		for _, f := range pkg.Files {
			imports := importTable(f)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				g.index(pkg, fd, imports)
			}
		}
	}
	for name := range g.byMethod {
		ms := g.byMethod[name]
		sort.Slice(ms, func(i, j int) bool {
			if ms[i].Pkg.Path != ms[j].Pkg.Path {
				return ms[i].Pkg.Path < ms[j].Pkg.Path
			}
			return ms[i].Name < ms[j].Name
		})
	}
	return g
}

func (g *CallGraph) index(pkg *Package, fd *ast.FuncDecl, imports map[string]string) {
	fi := &FuncInfo{
		Pkg:     pkg,
		Decl:    fd,
		Bare:    fd.Name.Name,
		imports: imports,
	}
	if fd.Type.Params != nil {
		for _, fld := range fd.Type.Params.List {
			n := len(fld.Names)
			if n == 0 {
				n = 1
			}
			fi.arity += n
			if _, ok := fld.Type.(*ast.Ellipsis); ok {
				fi.variadic = true
			}
		}
	}
	last := pkg.Path
	if i := strings.LastIndexByte(last, '/'); i >= 0 {
		last = last[i+1:]
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		fi.Recv = recvTypeName(fd.Recv.List[0].Type)
		fi.Name = last + ".(" + fi.Recv + ")." + fi.Bare
		byType := g.methods[pkg.Path]
		if byType == nil {
			byType = map[string]map[string]*FuncInfo{}
			g.methods[pkg.Path] = byType
		}
		byName := byType[fi.Recv]
		if byName == nil {
			byName = map[string]*FuncInfo{}
			byType[fi.Recv] = byName
		}
		byName[fi.Bare] = fi
		g.byMethod[fi.Bare] = append(g.byMethod[fi.Bare], fi)
	} else {
		fi.Name = last + "." + fi.Bare
		byName := g.funcs[pkg.Path]
		if byName == nil {
			byName = map[string]*FuncInfo{}
			g.funcs[pkg.Path] = byName
		}
		byName[fi.Bare] = fi
	}
}

// recvTypeName unwraps a receiver type expression to its base name.
func recvTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr: // generic receiver
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// Func looks up a plain function by package path and name.
func (g *CallGraph) Func(pkgPath, name string) *FuncInfo {
	return g.funcs[pkgPath][name]
}

// FuncOf returns the FuncInfo indexed for a declaration, or nil (test
// files and bodyless declarations are not indexed).
func (g *CallGraph) FuncOf(pkg *Package, fd *ast.FuncDecl) *FuncInfo {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		return g.methods[pkg.Path][recvTypeName(fd.Recv.List[0].Type)][fd.Name.Name]
	}
	return g.funcs[pkg.Path][fd.Name.Name]
}

// builtinFuncs never resolve to module declarations and never carry
// effects of their own.
var builtinFuncs = map[string]bool{
	"append": true, "cap": true, "clear": true, "close": true,
	"complex": true, "copy": true, "delete": true, "imag": true,
	"len": true, "make": true, "max": true, "min": true, "new": true,
	"panic": true, "print": true, "println": true, "real": true,
	"recover": true,
}

// Resolve returns the candidate callees of a call site in callerPkg,
// reading the surrounding file's import table from imports. The result
// is empty for builtins, stdlib calls, and function values; it has one
// element for precise resolutions and several for the interface/
// test-file name-and-arity fallback. unique reports whether the
// resolution was precise (one candidate found by a non-fallback path).
func (g *CallGraph) Resolve(callerPkg *Package, imports map[string]string, call *ast.CallExpr) (callees []*FuncInfo, unique bool) {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if builtinFuncs[fn.Name] {
			return nil, false
		}
		// Conversions to local types parse as calls; a types.Info hit on
		// the Ident that is a type name rules them out.
		if callerPkg.Info != nil {
			if obj := callerPkg.Info.Uses[fn]; obj != nil {
				if _, isType := obj.(*types.TypeName); isType {
					return nil, false
				}
				if _, isVar := obj.(*types.Var); isVar {
					return nil, false // function value: unresolved
				}
			}
		}
		if fi := g.funcs[callerPkg.Path][fn.Name]; fi != nil {
			return []*FuncInfo{fi}, true
		}
		return nil, false
	case *ast.SelectorExpr:
		if id, ok := fn.X.(*ast.Ident); ok {
			if path, isImport := imports[id.Name]; isImport {
				// Qualified call — but only if the identifier is not
				// shadowed by a local, which types.Info can tell us.
				shadowed := false
				if callerPkg.Info != nil {
					if obj := callerPkg.Info.Uses[id]; obj != nil {
						_, isPkg := obj.(*types.PkgName)
						shadowed = !isPkg
					}
				}
				if !shadowed {
					if fi := g.funcs[path][fn.Sel.Name]; fi != nil {
						return []*FuncInfo{fi}, true
					}
					return nil, false // stdlib or unknown package
				}
			}
		}
		// Method call. Precise when type information names a concrete
		// module receiver.
		if callerPkg.Info != nil {
			if sel, ok := callerPkg.Info.Selections[fn]; ok {
				if fi := g.methodBySelection(sel, fn.Sel.Name); fi != nil {
					return []*FuncInfo{fi}, true
				}
				if !isInterfaceRecv(sel) {
					// Concrete receiver with no module method: stdlib
					// stub or embedded stub — nothing to resolve, and
					// the fallback would only add name-collision noise.
					return nil, false
				}
			}
		}
		// Interface dispatch or an untyped (test-file) call site: every
		// module method with this name and a compatible arity.
		return g.methodCandidates(fn.Sel.Name, len(call.Args)), false
	}
	return nil, false
}

// methodBySelection resolves a concrete method selection to its module
// declaration, unwrapping pointers and following the promoted-field
// path's final receiver.
func (g *CallGraph) methodBySelection(sel *types.Selection, name string) *FuncInfo {
	if sel.Kind() != types.MethodVal && sel.Kind() != types.MethodExpr {
		return nil
	}
	obj := sel.Obj()
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return g.methods[obj.Pkg().Path()][named.Obj().Name()][name]
}

// isInterfaceRecv reports whether a selection dispatches through an
// interface.
func isInterfaceRecv(sel *types.Selection) bool {
	t := sel.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// methodCandidates returns every module method with the given name that
// could accept nargs arguments.
func (g *CallGraph) methodCandidates(name string, nargs int) []*FuncInfo {
	var out []*FuncInfo
	for _, fi := range g.byMethod[name] {
		if fi.arity == nargs || (fi.variadic && nargs >= fi.arity-1) {
			out = append(out, fi)
		}
	}
	return out
}

// --- transitive wall-clock / concurrency witnesses -----------------------

// clockWitness is the first wall-clock, randomness or raw-concurrency
// use reachable from a function, with the call chain that reaches it.
type clockWitness struct {
	// What is the offending construct, e.g. "time.Now", "math/rand
	// import", "goroutine", "channel receive".
	What string
	// Concurrency marks goroutine/channel/select/sync witnesses, which
	// are sanctioned inside engine-adjacent packages.
	Concurrency bool
	// Chain is the display-name path from the examined function down to
	// the witness's enclosing function (inclusive).
	Chain []string
}

// concurrencySanctioned are the packages whose raw concurrency is
// legitimate infrastructure: the event kernel's PDES workers, the trace
// collector's mutex, the sweep harness's worker pool. Wall-clock and
// math/rand use stays a finding even there.
var concurrencySanctioned = []string{
	"internal/sim", "internal/trace", "internal/harness",
}

// ClockWitness returns the transitive wall-clock/randomness/concurrency
// witness reachable from fi, or nil. Results are memoized; recursion is
// cut by treating in-progress functions as witness-free (a cycle cannot
// introduce an effect its members do not already carry).
func (g *CallGraph) ClockWitness(fi *FuncInfo) *clockWitness {
	if w, ok := g.clockMemo[fi]; ok {
		return w
	}
	if g.clockPath[fi] {
		return nil
	}
	g.clockPath[fi] = true
	defer delete(g.clockPath, fi)

	w := g.directClockUse(fi)
	if w == nil {
		for _, edge := range g.callSites(fi) {
			cw := g.ClockWitness(edge)
			if cw == nil {
				continue
			}
			w = &clockWitness{
				What:        cw.What,
				Concurrency: cw.Concurrency,
				Chain:       appendChain(fi.Name, cw.Chain),
			}
			break
		}
	}
	g.clockMemo[fi] = w
	return w
}

// directClockUse scans one function body for wall-clock, math/rand and
// raw-concurrency constructs, honoring the concurrency sanction of the
// engine-adjacent packages.
func (g *CallGraph) directClockUse(fi *FuncInfo) *clockWitness {
	sanctioned := pkgPathIn(fi.Pkg.Path, concurrencySanctioned...)
	var w *clockWitness
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if w != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok {
				switch fi.imports[id.Name] {
				case "time":
					if forbiddenTimeFuncs[n.Sel.Name] {
						w = &clockWitness{What: "time." + n.Sel.Name}
					}
				case "math/rand", "math/rand/v2":
					w = &clockWitness{What: "math/rand." + n.Sel.Name}
				}
			}
		case *ast.GoStmt:
			if !sanctioned {
				w = &clockWitness{What: "goroutine", Concurrency: true}
			}
		case *ast.SelectStmt:
			if !sanctioned {
				w = &clockWitness{What: "select", Concurrency: true}
			}
		case *ast.SendStmt:
			if !sanctioned {
				w = &clockWitness{What: "channel send", Concurrency: true}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !sanctioned {
				w = &clockWitness{What: "channel receive", Concurrency: true}
			}
		}
		return true
	})
	if w != nil {
		w.Chain = []string{fi.Name}
	}
	return w
}

// --- kernel-visible effect reachability (detorder) ------------------------

// visibleWitness names the first kernel-clock-visible effect reachable
// from a function: trace emission, event posting/scheduling, MPB/LMB
// stores, or flag signals.
type visibleWitness struct {
	What  string
	Chain []string
}

// kernelVisibleFuncs are the call names whose execution order is
// kernel-clock-visible: re-ordering them across a nondeterministic map
// iteration changes traces, schedules or memory images.
var kernelVisibleFuncs = map[string]string{
	// trace.Sink recording — event order lands in the Chrome export.
	"Span": "trace emission", "Instant": "trace emission",
	"Add": "trace counter", "Gauge": "trace gauge", "Observe": "trace histogram",
	// sim.Kernel scheduling and process control — posting order is the
	// same-cycle dispatch order.
	"At": "event scheduling", "After": "event scheduling",
	"AfterCancel": "event scheduling", "Spawn": "process spawn",
	"SpawnDaemon": "process spawn", "Post": "event posting",
	"Delay": "process delay", "Unpark": "process wakeup",
	// sim.Cond / sim.Queue — wake order is delivery order.
	"Signal": "cond signal", "Broadcast": "cond broadcast",
	"Push": "queue push", "Pop": "queue pop",
	// MPB/LMB stores and flag signals — memory-image and protocol order.
	"WriteMPB": "MPB store", "WriteV": "MPB store",
	"HostWriteLMB": "LMB store", "WriteLMB": "LMB store",
	"SignalSent": "flag signal", "SignalReady": "flag signal",
	"setSent": "flag signal", "setReady": "flag signal",
	"FlagSet": "flag signal", "FlushWCB": "WCB flush",
}

// VisibleWitness returns the first kernel-visible effect reachable from
// fi, or nil. Memoized like ClockWitness.
func (g *CallGraph) VisibleWitness(fi *FuncInfo) *visibleWitness {
	if w, ok := g.visMemo[fi]; ok {
		return w
	}
	if g.visPath[fi] {
		return nil
	}
	g.visPath[fi] = true
	defer delete(g.visPath, fi)

	var w *visibleWitness
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if w != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if what, hit := kernelVisibleFuncs[calleeName(call)]; hit {
			w = &visibleWitness{What: calleeName(call) + " (" + what + ")", Chain: []string{fi.Name}}
			return false
		}
		return true
	})
	if w == nil {
		for _, edge := range g.callSites(fi) {
			vw := g.VisibleWitness(edge)
			if vw == nil {
				continue
			}
			w = &visibleWitness{What: vw.What, Chain: appendChain(fi.Name, vw.Chain)}
			break
		}
	}
	g.visMemo[fi] = w
	return w
}

// --- shared traversal helpers ---------------------------------------------

// callSites returns the resolved callees of every call in fi's body, in
// syntactic order, deduplicated. Interface-dispatch fallbacks include
// every name-and-arity candidate (the over-approximation).
func (g *CallGraph) callSites(fi *FuncInfo) []*FuncInfo {
	seen := map[*FuncInfo]bool{}
	var out []*FuncInfo
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callees, _ := g.Resolve(fi.Pkg, fi.imports, call)
		for _, c := range callees {
			if c != fi && !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
		return true
	})
	return out
}

// chainCap bounds diagnostic chains: deeper escapes print a truncated
// prefix, which still names the entry point and the direction.
const chainCap = 8

func appendChain(head string, rest []string) []string {
	out := make([]string, 0, len(rest)+1)
	out = append(out, head)
	out = append(out, rest...)
	if len(out) > chainCap {
		out = append(out[:chainCap:chainCap], "…")
	}
	return out
}

// FormatChain renders a call chain for a diagnostic message.
func FormatChain(chain []string) string {
	return strings.Join(chain, " → ")
}
