package lint

import (
	"go/ast"
	"go/token"
)

// KernelClockAnalyzer forbids wall-clock time, unseeded process-global
// randomness and raw Go concurrency inside the model packages. The
// simulation contract (DESIGN.md §6, PR 1–2) is that every cycle of
// simulated time and every interleaving decision flows through the
// deterministic kernel in internal/sim: a single time.Now, goroutine or
// channel in a model package breaks byte-identical parallel sweeps.
//
// Test files are exempt — tests may legitimately use wall-clock
// timeouts and goroutines to drive the simulator from outside.
func KernelClockAnalyzer() *Analyzer {
	return &Analyzer{
		Name:    "kernelclock",
		Doc:     "model packages must take time and concurrency from internal/sim only",
		Applies: func(p string) bool { return pkgPathIn(p, modelPackages...) },
		Run:     runKernelClock,
	}
}

// forbiddenTimeFuncs are the wall-clock entry points of package time.
// Pure data like time.Duration arithmetic would be deterministic, but no
// model package needs it, so any listed selector is reported.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
	"Since": true, "Until": true,
}

func runKernelClock(pass *Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		imports := importTable(f)
		for _, imp := range f.Imports {
			switch path := importPathOf(imp); path {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(), "import of %s in a model package: unseeded process-global randomness breaks deterministic replay; derive randomness from an explicitly seeded source threaded through the harness", path)
			case "sync", "sync/atomic":
				pass.Reportf(imp.Pos(), "import of %s in a model package: synchronization must use internal/sim primitives (Cond, Queue, Gate), which keep the event order deterministic", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if id, ok := n.X.(*ast.Ident); ok && imports[id.Name] == "time" && forbiddenTimeFuncs[n.Sel.Name] {
					pass.Reportf(n.Pos(), "time.%s in a model package: simulated time is the kernel clock (sim.Proc.Delay / Kernel.Now), never the wall clock", n.Sel.Name)
				}
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "raw goroutine in a model package: spawn simulated processes with sim.Kernel.Spawn/SpawnDaemon so the kernel serializes execution deterministically")
			case *ast.ChanType:
				pass.Reportf(n.Pos(), "channel type in a model package: cross-process signalling must use sim.Cond/sim.Queue, which wake processes in deterministic event order")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select statement in a model package: nondeterministic case choice; block on sim primitives instead")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in a model package: use sim.Queue.Push / sim.Cond.Broadcast")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive in a model package: use sim.Queue.Pop / sim.Cond.Wait")
				}
			}
			return true
		})
	}
}

func importPathOf(imp *ast.ImportSpec) string {
	p := imp.Path.Value
	if len(p) >= 2 {
		p = p[1 : len(p)-1]
	}
	return p
}
