package lint

import (
	"go/ast"
	"go/token"
)

// KernelClockAnalyzer forbids wall-clock time, unseeded process-global
// randomness and raw Go concurrency inside the model packages. The
// simulation contract (DESIGN.md §6, PR 1–2) is that every cycle of
// simulated time and every interleaving decision flows through the
// deterministic kernel in internal/sim: a single time.Now, goroutine or
// channel in a model package breaks byte-identical parallel sweeps.
// Importing package time at all is a finding in a model package — even
// time.Time/Duration as plain data invites wall-clock coupling, and no
// model code needs it.
//
// internal/sim itself — the sanctioned channel — is audited in a
// relaxed mode: the PDES engine legitimately runs worker goroutines
// with sync and channels, but the wall clock and math/rand stay
// forbidden there too, so sub-kernel code cannot smuggle real time in
// through the engine.
//
// Test files are exempt — tests may legitimately use wall-clock
// timeouts and goroutines to drive the simulator from outside.
//
// Beyond the direct scan, the rule is transitive: a call from a model
// package into any module function — however many helper hops or
// interface dispatches away — that reaches a wall-clock read, a
// math/rand use, or raw concurrency outside the sanctioned engine
// infrastructure (internal/sim, internal/trace, internal/harness) is
// reported at the model-package call site, with the offending call
// chain in the diagnostic. Callees inside the audited packages are not
// re-reported at call sites: the direct scan already flags them at the
// definition, and their own outgoing escapes are flagged at their own
// call sites. Interface dispatch is over-approximated by name and
// arity (see callgraph.go), so an infeasible chain is suppressible
// with a proof.
func KernelClockAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "kernelclock",
		Doc:  "model packages take time and concurrency from internal/sim only; the engine itself never takes the wall clock",
		Applies: func(p string) bool {
			return pkgPathIn(p, modelPackages...) || pkgPathIn(p, enginePackages...)
		},
		Run: runKernelClock,
	}
}

// forbiddenTimeFuncs are the wall-clock entry points of package time.
// Pure data like time.Duration arithmetic would be deterministic, but no
// model package needs it, so any listed selector is reported.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
	"Since": true, "Until": true,
}

func runKernelClock(pass *Pass) {
	engine := pkgPathIn(pass.Pkg.Path, enginePackages...)
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		imports := importTable(f)
		for _, imp := range f.Imports {
			switch path := importPathOf(imp); path {
			case "time":
				if engine {
					pass.Reportf(imp.Pos(), "import of time in the simulation engine: the kernel IS the clock; worker coordination may use sync and channels, but simulated time advances only through the event queue")
				} else {
					pass.Reportf(imp.Pos(), "import of time in a model package: even time.Time/Duration data invites wall-clock coupling; simulated time is sim.Cycles on the kernel clock")
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(), "import of %s: unseeded process-global randomness breaks deterministic replay; derive randomness from an explicitly seeded source threaded through the harness", path)
			case "sync", "sync/atomic":
				if !engine {
					pass.Reportf(imp.Pos(), "import of %s in a model package: synchronization must use internal/sim primitives (Cond, Queue, Gate), which keep the event order deterministic", path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if id, ok := n.X.(*ast.Ident); ok && imports[id.Name] == "time" && forbiddenTimeFuncs[n.Sel.Name] {
					pass.Reportf(n.Pos(), "time.%s: simulated time is the kernel clock (sim.Proc.Delay / Kernel.Now), never the wall clock", n.Sel.Name)
				}
			case *ast.CallExpr:
				checkTransitiveClock(pass, imports, n)
			case *ast.GoStmt:
				if !engine {
					pass.Reportf(n.Pos(), "raw goroutine in a model package: spawn simulated processes with sim.Kernel.Spawn/SpawnDaemon so the kernel serializes execution deterministically")
				}
			case *ast.ChanType:
				if !engine {
					pass.Reportf(n.Pos(), "channel type in a model package: cross-process signalling must use sim.Cond/sim.Queue, which wake processes in deterministic event order")
				}
			case *ast.SelectStmt:
				if !engine {
					pass.Reportf(n.Pos(), "select statement in a model package: nondeterministic case choice; block on sim primitives instead")
				}
			case *ast.SendStmt:
				if !engine {
					pass.Reportf(n.Pos(), "channel send in a model package: use sim.Queue.Push / sim.Cond.Broadcast")
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !engine {
					pass.Reportf(n.Pos(), "channel receive in a model package: use sim.Queue.Pop / sim.Cond.Wait")
				}
			}
			return true
		})
	}
}

// checkTransitiveClock reports a call site whose resolved callee —
// outside the directly audited packages — transitively reaches the wall
// clock, math/rand, or unsanctioned raw concurrency. One report per
// call site, first witnessing candidate wins (candidate order is
// deterministic).
func checkTransitiveClock(pass *Pass, imports map[string]string, call *ast.CallExpr) {
	cg := pass.CallGraph()
	callees, _ := cg.Resolve(pass.Pkg, imports, call)
	for _, c := range callees {
		if pkgPathIn(c.Pkg.Path, modelPackages...) || pkgPathIn(c.Pkg.Path, enginePackages...) {
			continue // audited directly; escapes flagged at its own sites
		}
		w := cg.ClockWitness(c)
		if w == nil {
			continue
		}
		if w.Concurrency {
			pass.ReportChain(call.Pos(), w.Chain,
				"call reaches raw concurrency (%s) outside the engine: %s; route the interleaving through internal/sim so reruns stay byte-identical", w.What, FormatChain(w.Chain))
		} else {
			pass.ReportChain(call.Pos(), w.Chain,
				"call reaches %s: %s; simulated time and randomness must come from the kernel clock and seeded sources", w.What, FormatChain(w.Chain))
		}
		return
	}
}

func importPathOf(imp *ast.ImportSpec) string {
	p := imp.Path.Value
	if len(p) >= 2 {
		p = p[1 : len(p)-1]
	}
	return p
}
