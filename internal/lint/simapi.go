package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SimAPIAnalyzer guards the simulation kernel's unsigned clock. All delays
// are sim.Cycles (uint64): a delay computed as `deadline - now` silently
// wraps to ~2^64 when the subtraction goes negative, and the kernel then
// schedules the wakeup past the end of time — the process hangs and the
// run deadlocks with no diagnostic pointing at the call site.
//
// The analyzer flags scheduling calls (Delay/After/RunFor) whose duration
// argument contains a subtraction, unless an enclosing if-condition
// compares the same two operands (the clamp idiom):
//
//	if deadline > now {
//		p.Delay(deadline - now)
//	}
//
// Call sites that prove ordering another way (e.g. `done` was computed
// as `now + cost` two lines up) carry a //lint:ignore simapi comment
// stating that proof.
func SimAPIAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "simapi",
		Doc:  "scheduling delays must not be computed from subtractions that can go negative",
		Run:  runSimAPI,
	}
}

// simDelayFuncs maps scheduling entry points taking a relative duration
// as their first argument. Absolute-time calls (At, RunUntil) are exempt:
// they take a deadline, not a difference.
var simDelayFuncs = map[string]bool{
	"Delay": true, "After": true, "RunFor": true,
}

func runSimAPI(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSimBlock(pass, fd.Body.List, nil)
		}
	}
}

// checkSimBlock walks one statement list carrying the comparison guards of
// enclosing if-statements.
func checkSimBlock(pass *Pass, stmts []ast.Stmt, guards []*ast.BinaryExpr) {
	for _, st := range stmts {
		switch st := st.(type) {
		case *ast.IfStmt:
			checkSimBlock(pass, st.Body.List, append(guards, comparisonsIn(st.Cond)...))
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				checkSimBlock(pass, e.List, guards)
			case *ast.IfStmt:
				checkSimBlock(pass, []ast.Stmt{e}, guards)
			}
		case *ast.BlockStmt:
			checkSimBlock(pass, st.List, guards)
		case *ast.ForStmt:
			checkSimBlock(pass, st.Body.List, append(guards, comparisonsIn(st.Cond)...))
		case *ast.RangeStmt:
			checkSimBlock(pass, st.Body.List, guards)
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkSimBlock(pass, cc.Body, guards)
				}
			}
		default:
			ast.Inspect(st, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := calleeName(call)
				if !simDelayFuncs[name] || len(call.Args) == 0 {
					return true
				}
				sub := findSubtraction(call.Args[0])
				if sub == nil || clampedBy(guards, sub) {
					return true
				}
				pass.Reportf(sub.Pos(), "%s duration computed by subtraction: sim.Cycles is unsigned, a negative difference wraps to ~2^64 and stalls the process forever; clamp (`if a > b { ... }`) or prove ordering with //lint:ignore simapi <proof>", name)
				return true
			})
		}
	}
}

// findSubtraction returns the first token.SUB binary expression in the
// argument subtree, not descending into nested function literals.
func findSubtraction(e ast.Expr) *ast.BinaryExpr {
	var found *ast.BinaryExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if be, ok := n.(*ast.BinaryExpr); ok && be.Op == token.SUB {
			found = be
			return false
		}
		return true
	})
	return found
}

// comparisonsIn collects the ordering comparisons of an if-condition,
// looking through && conjunctions.
func comparisonsIn(cond ast.Expr) []*ast.BinaryExpr {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	switch be.Op {
	case token.GTR, token.GEQ, token.LSS, token.LEQ, token.NEQ:
		return []*ast.BinaryExpr{be}
	case token.LAND:
		return append(comparisonsIn(be.X), comparisonsIn(be.Y)...)
	}
	return nil
}

// clampedBy reports whether some enclosing guard compares the same two
// operands as the subtraction (matched textually, in either order).
func clampedBy(guards []*ast.BinaryExpr, sub *ast.BinaryExpr) bool {
	x, y := types.ExprString(sub.X), types.ExprString(sub.Y)
	for _, g := range guards {
		gx, gy := types.ExprString(g.X), types.ExprString(g.Y)
		if (gx == x && gy == y) || (gx == y && gy == x) {
			return true
		}
	}
	return false
}
