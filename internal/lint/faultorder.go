package lint

import (
	"go/ast"
)

// FaultOrderAnalyzer enforces the engaged-wait timeout discipline of the
// fault model (DESIGN.md §8): in the inter-device protocol layers every
// blocking wait on remote progress must go through a budget-carrying
// primitive, so a lost SIF packet, a stalled host task or a vanished
// flag write surfaces as a bounded, retryable timeout instead of a
// silent deadlock.
//
// The rule audits internal/vscc and internal/ircce — the layers whose
// waits a cross-device fault can starve — and reports every call of an
// un-budgeted wait primitive (WaitFlag, WaitLMBChange, AwaitSent,
// AwaitReady, WaitAnyLocalChange). Call sites must use the *For
// variants, which thread an explicit cycle budget (0 = wait forever,
// for fault-free configurations) and report expiry to the caller.
//
// Test files are exempt: tests drive raw protocols on fault-free
// fabrics where an unbounded wait is the point of the assertion.
func FaultOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name:    "faultorder",
		Doc:     "inter-device protocol waits must carry a cycle budget (*For variants)",
		Applies: func(p string) bool { return pkgPathIn(p, "internal/vscc", "internal/ircce") },
		Run:     runFaultOrder,
	}
}

// unboundedWaits maps each un-budgeted wait primitive to its budgeted
// replacement.
var unboundedWaits = map[string]string{
	"WaitFlag":           "WaitFlagFor",
	"WaitLMBChange":      "WaitLMBChangeFor",
	"AwaitSent":          "AwaitSentFor",
	"AwaitReady":         "AwaitReadyFor",
	"WaitAnyLocalChange": "WaitAnyLocalChangeFor",
}

func runFaultOrder(pass *Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if budgeted, bad := unboundedWaits[name]; bad {
				pass.Reportf(call.Pos(), "un-budgeted engaged wait %s: a lost packet or stalled host deadlocks here forever; use %s with a cycle budget (0 = no bound when faults are off)", name, budgeted)
			}
			return true
		})
	}
}
