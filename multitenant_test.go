// Multi-tenant integration: three tenants share one five-device fabric
// through the internal/sched scheduler, and every per-tenant outcome —
// job statuses, placements, PCIe bytes, bandwidth-throttle waits, cache
// evictions — is byte-identical to running that tenant alone on a fresh
// fabric. Co-location must be invisible in each tenant's own ledger.
package vscc_test

import (
	"fmt"
	"strings"
	"testing"

	"vscc/internal/sched"
	"vscc/internal/sim"
	"vscc/internal/trace"
	"vscc/internal/vscc"
)

// mtCacheLines keeps the host cache pool small enough that tenant 3's
// partition (8 lines) overflows and evicts during its spanning job.
const mtCacheLines = 64

func mtTenants() []sched.TenantSpec {
	return []sched.TenantSpec{
		{ID: 1, CacheLines: 16},
		{ID: 2, BWBytesPerCycle: 0.05, BurstBytes: 2048, CacheLines: 16},
		{ID: 3, CacheLines: 8},
	}
}

// mtJobs is each tenant's job set. Phase one (submit 0) is small
// single-device jobs from all three tenants at once — genuinely
// co-located on device 0 in the shared run. Phase two (submit 600k,
// long after phase one drains) is one 144-rank spanning job per tenant:
// head-of-line FIFO admits each onto an empty machine, so its placement
// — and with it every cross-device byte — matches the solo run exactly.
func mtJobs() map[int][]sched.JobSpec {
	return map[int][]sched.JobSpec{
		1: {
			{Tenant: 1, Name: "pp-1a", Submit: 0, Kind: sched.KindPingPong, Ranks: 6, Scheme: vscc.SchemeVDMA, Size: 1024, Reps: 3},
			{Tenant: 1, Name: "ring-1b", Submit: 0, Kind: sched.KindTraffic, Ranks: 4, Scheme: vscc.SchemeCachedGet, Size: 512, Reps: 2},
			{Tenant: 1, Name: "span-1", Submit: 600000, Kind: sched.KindTraffic, Ranks: 144, Scheme: vscc.SchemeVDMA, Size: 2048, Reps: 1},
		},
		2: {
			{Tenant: 2, Name: "ring-2a", Submit: 0, Kind: sched.KindTraffic, Ranks: 8, Scheme: vscc.SchemeVDMA, Size: 1024, Reps: 2},
			{Tenant: 2, Name: "pp-2b", Submit: 0, Kind: sched.KindPingPong, Ranks: 4, Scheme: vscc.SchemeRemotePut, Size: 512, Reps: 3},
			{Tenant: 2, Name: "span-2", Submit: 600000, Kind: sched.KindTraffic, Ranks: 144, Scheme: vscc.SchemeVDMA, Size: 4096, Reps: 1},
		},
		3: {
			{Tenant: 3, Name: "pp-3a", Submit: 0, Kind: sched.KindPingPong, Ranks: 6, Scheme: vscc.SchemeHostRouted, Size: 512, Reps: 2},
			{Tenant: 3, Name: "ring-3b", Submit: 0, Kind: sched.KindTraffic, Ranks: 4, Scheme: vscc.SchemeVDMA, Size: 768, Reps: 2},
			{Tenant: 3, Name: "span-3", Submit: 600000, Kind: sched.KindTraffic, Ranks: 144, Scheme: vscc.SchemeCachedGet, Size: 1024, Reps: 1},
		},
	}
}

// runTenantMix executes one schedule on a fresh kernel and fabric and
// returns the sink and results once every job is terminal.
func runTenantMix(t *testing.T, tenants []sched.TenantSpec, jobs []sched.JobSpec) (*trace.Sink, []sched.Result) {
	t.Helper()
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, vscc.Config{Devices: 5, Scheme: vscc.SchemeVDMA})
	if err != nil {
		t.Fatal(err)
	}
	sink := trace.NewSink(k)
	sys.Instrument(sink)
	s := sched.New(sys, sink, sched.Options{CacheLines: mtCacheLines})
	for _, ts := range tenants {
		if err := s.AddTenant(ts); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !s.AllTerminal() {
		t.Fatal("jobs left non-terminal after the kernel drained")
	}
	return sink, s.Results()
}

// tenantLedger renders one tenant's view of a run: its jobs in spec
// order (status and placement, no cycle stamps — wall-clock position on
// a shared machine is allowed to differ) plus its QoS counters.
func tenantLedger(sink *trace.Sink, results []sched.Result, id int) string {
	var b strings.Builder
	for _, r := range results {
		if r.Spec.Tenant != id {
			continue
		}
		fmt.Fprintf(&b, "job %s kind=%s ranks=%d scheme=%s devs=%v status=%s leaked=%v\n",
			r.Spec.Name, r.Spec.Kind, r.Spec.Ranks, r.Spec.Scheme.Key(),
			r.Devices(), r.Status, r.Leaked)
	}
	tag := trace.TenantTag(id)
	for _, c := range []string{"sched.admit.", "sched.done.", "sched.reject.", "qos.bytes.", "qos.bw_wait.", "host.cache_evict."} {
		fmt.Fprintf(&b, "%s%s=%d\n", c, tag, sink.CounterValue(c+tag))
	}
	return b.String()
}

// fullLedger is the cycle-stamped whole-run rendering used for the
// rerun-determinism comparison, where nothing may differ.
func fullLedger(sink *trace.Sink, results []sched.Result) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "job %s submit=%d admit=%d done=%d status=%s devs=%v\n",
			r.Spec.Name, r.Submit, r.Admit, r.Done, r.Status, r.Devices())
	}
	b.WriteString(sink.MetricsReport())
	return b.String()
}

func TestMultiTenantConcurrentMatchesBackToBack(t *testing.T) {
	tenants := mtTenants()
	jobSets := mtJobs()
	var mixed []sched.JobSpec
	for id := 1; id <= 3; id++ {
		mixed = append(mixed, jobSets[id]...)
	}

	sink, results := runTenantMix(t, tenants, mixed)
	for _, r := range results {
		if r.Status != sched.StatusOK {
			t.Fatalf("shared run: job %q finished %s: %v", r.Spec.Name, r.Status, r.Err)
		}
	}

	// Rerunning the shared schedule on a fresh fabric must reproduce
	// every cycle stamp and counter sample.
	sink2, results2 := runTenantMix(t, tenants, mixed)
	if a, b := fullLedger(sink, results), fullLedger(sink2, results2); a != b {
		t.Fatalf("shared run not deterministic across reruns:\n--- first\n%s--- second\n%s", a, b)
	}

	// The QoS pressure the mix was built to exercise must be present,
	// or the back-to-back comparison degenerates to all-zeros.
	if got := sink.CounterValue("qos.bw_wait.t002"); got == 0 {
		t.Error("tenant 2's bandwidth cap never throttled its spanning job")
	}
	if got := sink.CounterValue("host.cache_evict.t003"); got == 0 {
		t.Error("tenant 3's cache partition never overflowed")
	}
	if got := sink.CounterValue("qos.bw_wait.t001"); got != 0 {
		t.Errorf("uncapped tenant 1 waited %d cycles on a token bucket", got)
	}

	// Each tenant alone on a fresh fabric: its ledger must match the
	// shared run byte for byte.
	for id := 1; id <= 3; id++ {
		soloSink, soloResults := runTenantMix(t, tenants, jobSets[id])
		solo := tenantLedger(soloSink, soloResults, id)
		shared := tenantLedger(sink, results, id)
		if solo != shared {
			t.Errorf("tenant %d ledger differs between shared and solo runs:\n--- shared\n%s--- solo\n%s", id, shared, solo)
		}
	}
}
