// Serial-vs-parallel byte-identity for the task runtime (ISSUE PR-9
// acceptance bar), the same shape as TestPDESSerialParallelIdentity:
// a taskrt sweep's replicas are independent simulations, so fanning
// them over the harness worker pool must be unobservable — the Chrome
// trace export, the metrics reports and every sweep point must be
// byte-identical between a serial run and a 4-way -parallel run, with
// and without a scheduled device crash.
package vscc_test

import (
	"fmt"
	"strings"
	"testing"

	"vscc/internal/harness"
	"vscc/internal/sim"
	"vscc/internal/trace"
	"vscc/internal/vscc"
)

// taskrtFingerprint is everything a taskrt sweep externalizes.
type taskrtFingerprint struct {
	points  string // every TaskrtPoint line, replica order
	chrome  string // Chrome trace export of all replica sinks
	reports string // metrics reports (incl. taskrt.* and fault counters)
}

func (f taskrtFingerprint) diff(t *testing.T, g taskrtFingerprint) {
	t.Helper()
	if f.points != g.points {
		t.Errorf("sweep points differ:\n--- serial ---\n%s\n--- parallel ---\n%s", f.points, g.points)
	}
	if f.chrome != g.chrome {
		t.Errorf("chrome trace differs (%d vs %d bytes)", len(f.chrome), len(g.chrome))
	}
	if f.reports != g.reports {
		t.Errorf("metrics reports differ:\n--- serial ---\n%s\n--- parallel ---\n%s", f.reports, g.reports)
	}
}

// runTaskrtSweep runs the stencil workload as a 4-replica sweep under
// the given parallelism and fault spec and fingerprints the output.
func runTaskrtSweep(t *testing.T, parallel int, faultSpec string) taskrtFingerprint {
	t.Helper()
	prevPar := harness.Parallelism()
	harness.SetParallelism(parallel)
	defer harness.SetParallelism(prevPar)
	if err := harness.SetFaultSpec(faultSpec); err != nil {
		t.Fatalf("SetFaultSpec(%q): %v", faultSpec, err)
	}
	defer harness.SetFaultSpec("")

	var col trace.Collector
	prevObs := harness.SetObserver(func(label string, k *sim.Kernel) *trace.Sink {
		return col.New(label, k)
	})
	defer harness.SetObserver(prevObs)

	points, err := harness.TaskrtSweep(harness.TaskrtConfig{
		Workload: "stencil",
		Scheme:   vscc.SchemeVDMA,
		Devices:  2,
		Ranks:    4,
		Size:     4,
		Iters:    6,
		Replicas: 4,
	})
	if err != nil {
		t.Fatalf("TaskrtSweep(parallel=%d, fault=%q): %v", parallel, faultSpec, err)
	}
	var lines strings.Builder
	for _, p := range points {
		fmt.Fprintln(&lines, p)
	}
	caps := col.Captures()
	var chrome strings.Builder
	if err := trace.WriteChrome(&chrome, caps); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	return taskrtFingerprint{
		points:  lines.String(),
		chrome:  chrome.String(),
		reports: trace.Report(caps),
	}
}

// TestTaskrtSerialParallelIdentity is the identity gate: serial vs
// 4-way parallel sweeps, fault-free and with a mid-run device crash.
func TestTaskrtSerialParallelIdentity(t *testing.T) {
	const devCrash = "seed=1,devcrash=150000:1:200000,ckpt=50000,devretry=1"
	for _, tc := range []struct {
		name string
		spec string
	}{
		{"fault-free", ""},
		{"devcrash", devCrash},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial := runTaskrtSweep(t, 1, tc.spec)
			parallel := runTaskrtSweep(t, 4, tc.spec)
			serial.diff(t, parallel)
			// Replicas of one sweep are identical simulations, so
			// their hashes (and whole point lines modulo the replica
			// label) must agree with each other too.
			lines := strings.Split(strings.TrimSpace(serial.points), "\n")
			var base []string
			for _, ln := range lines {
				if !strings.HasPrefix(ln, "taskrt/") {
					continue // injector summary continuation lines
				}
				base = append(base, ln)
			}
			if len(base) != 4 {
				t.Fatalf("expected 4 replica lines, got %d:\n%s", len(base), serial.points)
			}
			for i, ln := range base {
				want := strings.Replace(base[0], "rep=00", fmt.Sprintf("rep=%02d", i), 1)
				if ln != want {
					t.Errorf("replica %d line diverges:\n%s\nwant\n%s", i, ln, want)
				}
			}
			if tc.spec != "" && !strings.Contains(serial.reports, "inject.devcrash") {
				t.Error("devcrash sweep reports no inject.devcrash counter")
			}
		})
	}
}
