package vscc_test

import (
	"regexp"
	"strings"
	"testing"

	"vscc/internal/rcce"
	"vscc/internal/sim"
	"vscc/internal/vscc"
)

// These tests drive the runtime MPB consistency checker (Config.Check,
// the -check flag of cmd/pingpong and cmd/ablate) through a full vSCC
// system. The broken receiver waits for the sent flag with PeekSent —
// which, unlike WaitFlag, does not invalidate the MPBT L1 — and then
// reads the payload without the InvalidateMPB the gory discipline
// requires (paper §3.1). The checker must attribute the stale read to
// the exact rank and cycle; the repaired receiver must run clean and
// deliver the payload.

const stalePayloadOff = 64 // a payload line inside [0, PayloadBytes)

// brokenReceiver warms its L1 on the sender's payload line, peeks for
// the sent flag, and reads the payload back without invalidating. The
// goryorder analyzer flags the final read statically; the suppression
// keeps the tree lint-clean so the runtime checker can demonstrate
// catching the same bug dynamically.
func brokenReceiver(r *rcce.Rank, buf []byte) byte {
	ctx := r.Ctx()
	dev0, tile0, base0 := r.MPBOf(0)
	ctx.ReadMPB(dev0, tile0, base0+stalePayloadOff, buf) // warm the L1
	r.SignalReady(0)
	for !r.PeekSent(0) {
		r.WaitAnyLocalChange()
	}
	r.ClearSent(0)
	//lint:ignore goryorder deliberate stale read: the runtime checker must catch it
	ctx.ReadMPB(dev0, tile0, base0+stalePayloadOff, buf)
	return buf[0]
}

// soundReceiver is the same protocol with the missing InvalidateMPB
// restored.
func soundReceiver(r *rcce.Rank, buf []byte) byte {
	ctx := r.Ctx()
	dev0, tile0, base0 := r.MPBOf(0)
	ctx.ReadMPB(dev0, tile0, base0+stalePayloadOff, buf) // warm the L1
	r.SignalReady(0)
	for !r.PeekSent(0) {
		r.WaitAnyLocalChange()
	}
	r.ClearSent(0)
	ctx.InvalidateMPB()
	ctx.ReadMPB(dev0, tile0, base0+stalePayloadOff, buf)
	return buf[0]
}

// runMPBCheckScenario plays a two-rank flag/payload exchange with the
// checker enabled. invalidate selects the disciplined receiver.
func runMPBCheckScenario(invalidate bool) (got byte, err error) {
	k := sim.NewKernel()
	sys, err := vscc.NewSystem(k, vscc.Config{Devices: 1, Check: true})
	if err != nil {
		return 0, err
	}
	session, err := sys.NewSession(2)
	if err != nil {
		return 0, err
	}
	err = session.Run(func(r *rcce.Rank) {
		ctx := r.Ctx()
		dev0, tile0, base0 := r.MPBOf(0)
		switch r.ID() {
		case 0:
			r.AwaitReady(1)
			ctx.WriteMPB(dev0, tile0, base0+stalePayloadOff, []byte{42})
			ctx.FlushWCB()
			r.SignalSent(1)
		case 1:
			buf := make([]byte, 1)
			if invalidate {
				got = soundReceiver(r, buf)
			} else {
				got = brokenReceiver(r, buf)
			}
		}
	})
	return got, err
}

func TestMPBCheckCatchesSkippedInvalidate(t *testing.T) {
	_, err := runMPBCheckScenario(false)
	if err == nil {
		t.Fatal("skipping InvalidateMPB after a peek wait was not caught")
	}
	msg := err.Error()
	for _, want := range []string{
		"rcce: rank 1 panicked",
		"scc: mpb-check",
		"stale MPB line",
		"missing InvalidateMPB after the flag wait",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error does not mention %q:\n%s", want, msg)
		}
	}
	m := regexp.MustCompile(`at cycle (\d+)`).FindStringSubmatch(msg)
	if m == nil {
		t.Fatalf("error does not report the cycle:\n%s", msg)
	}
	// The simulation is deterministic: a rerun must report the violation
	// at the identical rank, line and cycle.
	_, err2 := runMPBCheckScenario(false)
	if err2 == nil || err2.Error() != msg {
		t.Errorf("rerun reported a different violation:\nfirst: %s\nrerun: %v", msg, err2)
	}
}

func TestMPBCheckPassesDisciplinedProtocol(t *testing.T) {
	got, err := runMPBCheckScenario(true)
	if err != nil {
		t.Fatalf("disciplined protocol flagged: %v", err)
	}
	if got != 42 {
		t.Errorf("receiver read %d, want 42", got)
	}
}
