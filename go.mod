module vscc

go 1.22
